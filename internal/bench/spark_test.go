package bench

import (
	"testing"
	"time"

	"anyscan/internal/datasets"
	"anyscan/internal/graph"
)

func datasetsMustLoad(t *testing.T, name string, scale float64) *graph.CSR {
	t.Helper()
	g, err := datasets.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 0, 1); got != "" {
		t.Fatalf("empty series rendered %q", got)
	}
	s := sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("want 3 runes, got %q", s)
	}
	r := []rune(s)
	if r[0] != '▁' || r[2] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// Values clamp outside the range; degenerate range is tolerated.
	s = sparkline([]float64{-5, 99}, 0, 1)
	r = []rune(s)
	if r[0] != '▁' || r[1] != '█' {
		t.Fatalf("clamping wrong: %q", s)
	}
	if got := sparkline([]float64{3, 3}, 3, 3); len([]rune(got)) != 2 {
		t.Fatalf("degenerate range: %q", got)
	}
}

func TestAutoBlockAndHelpers(t *testing.T) {
	small := datasetsMustLoad(t, "GR01L", 0.05)
	if b := autoBlock(small); b != 128 {
		t.Fatalf("small graph auto block = %d, want floor 128", b)
	}
	big := datasetsMustLoad(t, "GR02L", 1.0)
	if b := autoBlock(big); b != big.NumVertices()/128 {
		t.Fatalf("big graph auto block = %d, want |V|/128", b)
	}
	cfg := DefaultConfig(nil)
	o := cfg.anyOpts(big, 3)
	if o.Threads != 3 || o.Alpha != autoBlock(big) || o.Beta != autoBlock(big) {
		t.Fatalf("anyOpts wiring wrong: %+v", o)
	}
	cfg.Alpha, cfg.Beta = 77, 88
	o = cfg.anyOpts(big, 1)
	if o.Alpha != 77 || o.Beta != 88 {
		t.Fatalf("explicit block sizes ignored: %+v", o)
	}
	if got := sortedCopy([]int{4, 1, 16}); got[0] != 1 || got[2] != 16 {
		t.Fatalf("sortedCopy: %v", got)
	}
	if got := ms(1500 * time.Microsecond); got != "1.5" {
		t.Fatalf("ms formatting: %q", got)
	}
}
