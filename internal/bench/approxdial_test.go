package bench

import (
	"bytes"
	"testing"
)

// TestApproxDialRows checks that configuring accuracy dials adds the
// approx-build/approx-query rows to the report: one build per δ, the same
// (μ, ε) grid as the exact index rows, a recorded dial on every row, and an
// ARI/NMI score on every query row (the column the CI gate reads).
func TestApproxDialRows(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Threads = []int{1}
	cfg.ApproxDeltas = []float64{0.05, 0.2}
	rep, err := CollectRecords(cfg, []string{"GR01L"})
	if err != nil {
		t.Fatal(err)
	}
	builds, queries := 0, 0
	for _, r := range rep.Records {
		switch r.Algorithm {
		case "approx-build":
			builds++
			if r.Delta <= 0 {
				t.Errorf("approx-build without a dial: %+v", r)
			}
			if r.Sketched <= 0 {
				t.Errorf("approx-build at δ=%g sketched no edges (dense graph, expected the sketch path)", r.Delta)
			}
		case "approx-query":
			queries++
			if r.Delta <= 0 || r.Mu < 1 || r.Eps <= 0 {
				t.Errorf("approx-query missing parameters: %+v", r)
			}
			if r.ARI < -1 || r.ARI > 1 || r.NMI < 0 || r.NMI > 1 {
				t.Errorf("approx-query agreement out of range: ARI=%g NMI=%g", r.ARI, r.NMI)
			}
			if r.ARI < 0.9 {
				t.Errorf("approx-query δ=%g (μ=%d, ε=%g): ARI %.4f implausibly low", r.Delta, r.Mu, r.Eps, r.ARI)
			}
		}
	}
	if builds != 2 {
		t.Fatalf("approx-build rows = %d, want one per dial (2)", builds)
	}
	if queries != 2*6 {
		t.Fatalf("approx-query rows = %d, want the 2x3 grid per dial (12)", queries)
	}
}
