package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
)

// LoadReport reads a BENCH_<date>.json report written by Report.WriteJSON.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// recordKey identifies a measurement cell across two reports: same dataset,
// algorithm, thread count and — for index-query rows — the same (μ, ε), —
// for live-mutation rows — the same batch size, — for local-query rows —
// the same seed vertex, and — for approx rows — the same accuracy dial δ
// (zero on every other row, so older baselines keep matching).
type recordKey struct {
	Dataset   string
	Algorithm string
	Threads   int
	Mu        int
	Eps       float64
	Batch     int
	Seed      int32
	Delta     float64
}

func keyOf(r Record) recordKey {
	return recordKey{r.Dataset, r.Algorithm, r.Threads, r.Mu, r.Eps, r.Batch, r.Seed, r.Delta}
}

func (k recordKey) String() string {
	s := fmt.Sprintf("%s/%s/threads=%d", k.Dataset, k.Algorithm, k.Threads)
	if k.Mu != 0 || k.Eps != 0 {
		s += fmt.Sprintf("/mu=%d,eps=%g", k.Mu, k.Eps)
	}
	if k.Batch != 0 {
		s += fmt.Sprintf("/batch=%d", k.Batch)
	}
	if k.Algorithm == "local-query" {
		s += fmt.Sprintf("/seed=%d", k.Seed)
	}
	if k.Delta != 0 {
		s += fmt.Sprintf("/delta=%g", k.Delta)
	}
	return s
}

// Delta is one matched cell of a report comparison.
type Delta struct {
	Key          recordKey
	OldMS, NewMS float64
	// Speedup is old/new wall time (>1 means new is faster).
	Speedup float64
}

// CompareReports matches the cells of two reports and returns the deltas
// (sorted by key) plus the keys present in only one report.
func CompareReports(oldRep, newRep Report) (deltas []Delta, onlyOld, onlyNew []recordKey) {
	oldByKey := map[recordKey]Record{}
	for _, r := range oldRep.Records {
		oldByKey[keyOf(r)] = r
	}
	seen := map[recordKey]bool{}
	for _, r := range newRep.Records {
		k := keyOf(r)
		seen[k] = true
		o, ok := oldByKey[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := Delta{Key: k, OldMS: o.WallMS, NewMS: r.WallMS}
		if r.WallMS > 0 {
			d.Speedup = o.WallMS / r.WallMS
		}
		deltas = append(deltas, d)
	}
	for _, r := range oldRep.Records {
		if !seen[keyOf(r)] {
			onlyOld = append(onlyOld, keyOf(r))
		}
	}
	sortKeys := func(ks []recordKey) {
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Key.String() < deltas[j].Key.String() })
	sortKeys(onlyOld)
	sortKeys(onlyNew)
	return deltas, onlyOld, onlyNew
}

// WriteComparison renders a benchcmp-style delta table of two reports: one
// row per matched (dataset, algorithm, threads[, μ, ε]) cell with old/new
// wall time, the relative delta, and a geometric-mean speedup summary line.
func WriteComparison(w io.Writer, oldRep, newRep Report) error {
	deltas, onlyOld, onlyNew := CompareReports(oldRep, newRep)
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no matching benchmark cells between the two reports")
		return nil
	}
	tw := newTab(w)
	fmt.Fprintf(tw, "benchmark\told ms\tnew ms\tdelta\tspeedup\n")
	logSum, logN := 0.0, 0
	for _, d := range deltas {
		delta := "~"
		speedup := "n/a"
		if d.OldMS > 0 && d.NewMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.NewMS-d.OldMS)/d.OldMS*100)
			speedup = fmt.Sprintf("%.2fx", d.Speedup)
			logSum += math.Log(d.Speedup)
			logN++
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%s\n", d.Key, d.OldMS, d.NewMS, delta, speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if logN > 0 {
		fmt.Fprintf(w, "\ngeomean speedup: %.2fx over %d cells\n", math.Exp(logSum/float64(logN)), logN)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(w, "only in old report: %s\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(w, "only in new report: %s\n", k)
	}
	return nil
}

// WriteGoBench renders the report in the standard `go test -bench` output
// format (one "Benchmark.../threads-N  1  <ns> ns/op" line per record), so
// the records can be fed to benchstat and other Go benchmark tooling
// alongside the native micro-benchmarks.
func (rep Report) WriteGoBench(w io.Writer) error {
	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: anyscan/internal/bench\n")
	for _, r := range rep.Records {
		name := fmt.Sprintf("Benchmark%s/%s/threads-%d",
			goBenchName(r.Algorithm), goBenchName(r.Dataset), r.Threads)
		if r.Mu != 0 || r.Eps != 0 {
			name += fmt.Sprintf("/mu-%d-eps-%g", r.Mu, r.Eps)
		}
		if r.Batch != 0 {
			name += fmt.Sprintf("/batch-%d", r.Batch)
		}
		if r.Algorithm == "local-query" {
			name += fmt.Sprintf("/seed-%d", r.Seed)
		}
		if r.Delta != 0 {
			name += fmt.Sprintf("/delta-%g", r.Delta)
		}
		ns := r.WallMS * 1e6
		if _, err := fmt.Fprintf(w, "%s \t%8d\t%12.0f ns/op\t%12d sim-evals\n",
			name, 1, ns, r.SimEvals); err != nil {
			return err
		}
	}
	return nil
}

// goBenchName maps free-form dataset/algorithm names onto the benchmark name
// grammar (no spaces, '*' or '+' punctuation).
func goBenchName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == '+':
			b.WriteRune('p') // SCAN++ → SCANpp
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
