package bench

import (
	"fmt"
	"time"

	"anyscan/internal/eval"
	"anyscan/internal/graph"
	"anyscan/internal/index"
)

// approxDialDatasets are the datasets the approxdial experiment sweeps: two
// Table I stand-ins plus the hub-degree stress graph where the sketch path
// carries essentially the whole σ pass.
var approxDialDatasets = []string{"GR01L", "GR05L", "HUB01"}

// RunApproxDial prints the accuracy-vs-speedup table of the MinHash
// accuracy dial: per (dataset, δ), the exact vs sketched σ-pass build time,
// the fraction of edges served by sketches, the arcs the (μ, ε) query grid
// had to resolve exactly inside the ε-band, and the worst-case ARI/NMI of
// the grid's answers against the exact index.
func RunApproxDial(cfg Config) error {
	header(cfg.Out, "Approximate σ: MinHash dial accuracy vs build speedup")
	deltas := cfg.ApproxDeltas
	if len(deltas) == 0 {
		deltas = []float64{index.DefaultApproxDelta}
	}
	threads := 1
	for _, t := range cfg.Threads {
		if t > threads {
			threads = t
		}
	}
	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "dataset\tδ\texact-build(ms)\tapprox-build(ms)\tspeedup\tsketched\tband-resolved\tmin-ARI\tmin-NMI\n")
	for _, name := range approxDialDatasets {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		exact := index.Build(g, threads)
		for _, delta := range deltas {
			ax, err := index.BuildApprox(g, threads, delta)
			if err != nil {
				return err
			}
			minARI, minNMI := 1.0, 1.0
			for _, mu := range dedupInts([]int{2, cfg.Mu}) {
				for _, eps := range dedupFloats([]float64{0.3, cfg.Eps, 0.7}) {
					want, err := exact.Query(mu, eps)
					if err != nil {
						return err
					}
					got, err := ax.Query(mu, eps)
					if err != nil {
						return err
					}
					ari, nmi := eval.Agreement(want, got)
					minARI, minNMI = min(minARI, ari), min(minNMI, nmi)
				}
			}
			st := ax.Approx()
			fmt.Fprintf(tw, "%s\t%g\t%s\t%s\t%.2fx\t%.1f%%\t%d\t%.4f\t%.4f\n",
				name, delta, ms(exact.BuildTime()), ms(ax.BuildTime()),
				float64(exact.BuildTime())/float64(ax.BuildTime()),
				100*float64(st.Sketched)/float64(st.Sketched+st.BuildExact),
				st.Resolved, minARI, minNMI)
		}
	}
	return tw.Flush()
}

// measureApproxDial records the accuracy-vs-speedup tradeoff of the
// approximate similarity mode: for each configured dial δ it rebuilds the
// query index with MinHash sketches ("approx-build" rows — their wall time
// against the exact "index-build" row is the speedup axis) and answers the
// same (μ, ε) grid as measureIndex ("approx-query" rows), scoring each
// clustering against the exact index's answer with ARI and NMI (the
// accuracy axis). The CI accuracy gate reads the ARI column of these rows.
func (cfg Config) measureApproxDial(base Record, g graph.Graph, exact *index.Index) ([]Record, error) {
	var out []Record
	for _, delta := range cfg.ApproxDeltas {
		if delta <= 0 {
			continue
		}
		ax, err := index.BuildApprox(g, exact.Threads(), delta)
		if err != nil {
			return nil, err
		}
		build := base
		build.Algorithm = "approx-build"
		build.Threads = exact.Threads()
		build.Delta = delta
		build.WallMS = float64(ax.BuildTime().Microseconds()) / 1000
		build.SimEvals = ax.SimEvals()
		build.Sketched = ax.Approx().Sketched
		out = append(out, build)

		for _, mu := range dedupInts([]int{2, cfg.Mu}) {
			for _, eps := range dedupFloats([]float64{0.3, cfg.Eps, 0.7}) {
				want, err := exact.Query(mu, eps)
				if err != nil {
					return nil, err
				}
				rec := base
				rec.Algorithm = "approx-query"
				rec.Threads = exact.Threads()
				rec.Mu, rec.Eps, rec.Delta = mu, eps, delta
				start := time.Now()
				res, err := ax.Query(mu, eps)
				if err != nil {
					return nil, err
				}
				rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
				rec.Clusters = res.NumClusters
				rec.ARI, rec.NMI = eval.Agreement(want, res)
				out = append(out, rec)
			}
		}
	}
	return out, nil
}
