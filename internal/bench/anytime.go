package bench

import (
	"fmt"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/eval"
	"anyscan/internal/graph"
)

// tracePoint is one anytime measurement: cumulative in-algorithm time and
// the NMI of the intermediate snapshot against the SCAN ground truth.
type tracePoint struct {
	Iter    int
	Phase   core.Phase
	Elapsed time.Duration
	NMI     float64
}

// traceAnytime drives an anySCAN run, snapshotting every sampleEvery
// iterations (always including the final state). Snapshot and NMI costs are
// excluded from the reported elapsed times (the Clusterer clocks only its
// Step calls), mirroring how the paper measures "suppress and examine".
func traceAnytime(g *graph.CSR, o core.Options, truth *cluster.Result, sampleEvery int) ([]tracePoint, core.Metrics, error) {
	c, err := core.New(g, o)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	var points []tracePoint
	iter := 0
	for {
		more := c.Step()
		iter++
		if iter%sampleEvery == 0 || !more {
			snap := c.Snapshot()
			points = append(points, tracePoint{
				Iter:    iter,
				Phase:   c.Phase(),
				Elapsed: c.Metrics().Elapsed,
				NMI:     eval.NMI(snap, truth),
			})
		}
		if !more {
			break
		}
	}
	return points, c.Metrics(), nil
}

// RunFig5 reproduces Figure 5: for GR01L..GR04L and ε ∈ {0.5, 0.6}, the
// cumulative runtime and NMI of anySCAN at intermediate iterations, with the
// final runtimes of the batch algorithms as reference lines.
func RunFig5(cfg Config) error {
	header(cfg.Out, "Fig 5: anytime NMI and cumulative runtime vs batch algorithms (μ=5)")
	for _, epsilon := range []float64{0.5, 0.6} {
		for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
			g, err := cfg.load(name)
			if err != nil {
				return err
			}
			local := cfg
			local.Eps = epsilon
			truth, scanM := runBatchByName(g, "SCAN", cfg.Mu, epsilon)
			fmt.Fprintf(cfg.Out, "\n-- %s  ε=%.1f --\n", name, epsilon)
			tw := newTab(cfg.Out)
			fmt.Fprintln(tw, "batch\truntime(ms)\tclusters")
			fmt.Fprintf(tw, "SCAN\t%s\t%d\n", ms(scanM.Elapsed), truth.NumClusters)
			for _, a := range batchAlgos()[1:] {
				res, m := a.run(g, cfg.Mu, epsilon)
				fmt.Fprintf(tw, "%s\t%s\t%d\n", a.name, ms(m.Elapsed), res.NumClusters)
			}
			tw.Flush()

			points, anyM, err := traceAnytime(g, local.anyOpts(g, 0), truth, 2)
			if err != nil {
				return err
			}
			tw = newTab(cfg.Out)
			fmt.Fprintln(tw, "anySCAN iter\tphase\tcumulative(ms)\tNMI")
			for _, p := range points {
				fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\n", p.Iter, p.Phase, ms(p.Elapsed), p.NMI)
			}
			tw.Flush()
			nmis := make([]float64, len(points))
			for i, p := range points {
				nmis[i] = p.NMI
			}
			fmt.Fprintf(cfg.Out, "NMI over iterations: %s (0→1)\n", sparkline(nmis, 0, 1))
			fmt.Fprintf(cfg.Out, "anySCAN final: %s ms, %d similarity evals (SCAN: %d)\n",
				ms(anyM.Elapsed), anyM.Sim.Sims, scanM.Sim.Sims)
		}
	}
	return nil
}

// RunFig8 reproduces Figure 8: the effect of ε and μ on the anytime quality
// curve (top) and of the block sizes α=β on the final runtime (bottom), on
// GR01L.
func RunFig8(cfg Config) error {
	header(cfg.Out, "Fig 8: parameter and block-size effects on anySCAN (GR01L)")
	g, err := cfg.load("GR01L")
	if err != nil {
		return err
	}

	fmt.Fprintln(cfg.Out, "\n-- anytime NMI traces vs ε (μ=5) --")
	for _, epsilon := range []float64{0.2, 0.4, 0.6, 0.8} {
		local := cfg
		local.Eps = epsilon
		truth, _ := runBatchByName(g, "SCAN", cfg.Mu, epsilon)
		points, _, err := traceAnytime(g, local.anyOpts(g, 0), truth, 2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "ε=%.1f:", epsilon)
		for _, p := range points {
			fmt.Fprintf(cfg.Out, "  (%sms, %.2f)", ms(p.Elapsed), p.NMI)
		}
		fmt.Fprintln(cfg.Out)
	}

	fmt.Fprintln(cfg.Out, "\n-- anytime NMI traces vs μ (ε=0.5) --")
	for _, mu := range []int{2, 5, 10, 15} {
		local := cfg
		local.Mu = mu
		truth, _ := runBatchByName(g, "SCAN", mu, cfg.Eps)
		points, _, err := traceAnytime(g, local.anyOpts(g, 0), truth, 2)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "μ=%d:", mu)
		for _, p := range points {
			fmt.Fprintf(cfg.Out, "  (%sms, %.2f)", ms(p.Elapsed), p.NMI)
		}
		fmt.Fprintln(cfg.Out)
	}

	fmt.Fprintln(cfg.Out, "\n-- final runtime (ms) vs block size α=β --")
	blocks := []int{64, 256, 1024, 4096, 16384}
	tw := newTab(cfg.Out)
	fmt.Fprint(tw, "param")
	for _, b := range blocks {
		fmt.Fprintf(tw, "\tα=β=%d", b)
	}
	fmt.Fprintln(tw)
	for _, mu := range []int{2, 5, 10} {
		fmt.Fprintf(tw, "μ=%d ε=%.1f", mu, cfg.Eps)
		for _, b := range blocks {
			o := cfg.anyOpts(g, 0)
			o.Mu = mu
			o.Alpha, o.Beta = b, b
			_, _, d, err := runAnySCAN(g, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", ms(d))
		}
		fmt.Fprintln(tw)
	}
	for _, epsilon := range []float64{0.2, 0.5, 0.8} {
		fmt.Fprintf(tw, "μ=%d ε=%.1f", cfg.Mu, epsilon)
		for _, b := range blocks {
			o := cfg.anyOpts(g, 0)
			o.Eps = epsilon
			o.Alpha, o.Beta = b, b
			_, _, d, err := runAnySCAN(g, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", ms(d))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// runBatchByName runs the named batch algorithm.
func runBatchByName(g *graph.CSR, name string, mu int, eps float64) (*cluster.Result, scanMetrics) {
	for _, a := range batchAlgos() {
		if a.name == name {
			res, m := a.run(g, mu, eps)
			return res, m
		}
	}
	panic("bench: unknown batch algorithm " + name)
}
