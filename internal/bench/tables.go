package bench

import (
	"fmt"

	"anyscan/internal/datasets"
	"anyscan/internal/graph"
)

// RunTable1 prints the Table I inventory: the real-graph stand-ins with
// their achieved vertex counts, edge counts, average degrees and clustering
// coefficients next to the paper's originals.
func RunTable1(cfg Config) error {
	return runInventory(cfg, "Table I: real graph dataset stand-ins", datasets.RealNames())
}

// RunTable2 prints the Table II inventory: the LFR degree and clustering-
// coefficient sweeps.
func RunTable2(cfg Config) error {
	names := append(datasets.LFRDegreeNames(), datasets.LFRCCNames()...)
	return runInventory(cfg, "Table II: LFR synthetic dataset stand-ins", names)
}

func runInventory(cfg Config, title string, names []string) error {
	header(cfg.Out, title)
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "Id\tVertices\tEdges\td̄\tc\tmax-deg\tstands in for")
	for _, name := range names {
		info, err := datasets.Describe(name)
		if err != nil {
			return err
		}
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.4f\t%d\t%s\n",
			name, s.Vertices, s.Edges, s.AvgDegree, s.AvgCC, s.MaxDegree, info.Paper)
	}
	return tw.Flush()
}
