package bench

import (
	"fmt"

	"anyscan/internal/mapreduce"
	"anyscan/internal/scan"
)

// RunMapReduce quantifies the paper's Section V argument that transplanting
// the distributed PSCAN (Zhao et al., AINA 2013) onto a shared-memory
// machine is inefficient: the MapReduce formulation pays one shuffled
// message per similar edge per label-propagation round plus a global
// barrier per round, while anySCAN synchronizes with a handful of Union
// operations and pSCAN with none at all.
func RunMapReduce(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("MapReduce PSCAN vs shared-memory algorithms (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "dataset\tMR rounds\tMR shuffled KVs\tMR(ms)\tpSCAN(ms)\tanySCAN(ms)\tanySCAN unions")
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		resMR, stats, dMR := mapreduce.PSCANMR(g, cfg.Mu, cfg.Eps, 0)
		_, mP := scan.PSCAN(g, cfg.Mu, cfg.Eps)
		resAny, mAny, dAny, err := runAnySCAN(g, cfg.anyOpts(g, 0))
		if err != nil {
			return err
		}
		if resMR.NumClusters != resAny.NumClusters {
			fmt.Fprintf(cfg.Out, "WARNING: %s cluster count mismatch (MR %d vs anySCAN %d)\n",
				name, resMR.NumClusters, resAny.NumClusters)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%d\n",
			name, stats.Rounds, stats.ShuffledKVs, ms(dMR), ms(mP.Elapsed), ms(dAny), mAny.Unions())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "(every shuffled KV is cross-worker traffic; every round a global barrier)")
	return nil
}
