package bench

import (
	"fmt"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/eval"
	"anyscan/internal/graph"
	"anyscan/internal/scan"
)

// RunApprox contrasts the two routes to approximate results the paper
// discusses: LinkSCAN*-style edge sampling (fixed work, unrefinable output)
// versus anySCAN's anytime early stopping at the *same* similarity budget
// (and refinable to exactness). For each sampling rate ρ, both approaches
// get ρ·2|E| evaluations; quality is NMI against the exact clustering.
func RunApprox(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("Approximation: LinkSCAN*-style sampling vs anySCAN early stop (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		truth, _ := scan.SCAN(g, cfg.Mu, cfg.Eps)
		fmt.Fprintf(cfg.Out, "\n-- %s (2|E| = %d evaluations for exact SCAN) --\n", name, g.NumArcs())
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "budget ρ\tsampling NMI\tsampling(ms)\tanySCAN-stop NMI\tanySCAN(ms)\tanySCAN evals used")
		for _, rho := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
			budget := int64(rho * float64(g.NumArcs()))
			sampled, mS := scan.ApproxSCAN(g, cfg.Mu, cfg.Eps, rho, 1)
			nmiS := eval.NMI(sampled, truth)

			snap, mA, err := earlyStop(g, cfg.anyOpts(g, 0), budget)
			if err != nil {
				return err
			}
			nmiA := eval.NMI(snap, truth)
			fmt.Fprintf(tw, "%.1f\t%.3f\t%s\t%.3f\t%s\t%d\n",
				rho, nmiS, ms(mS.Elapsed), nmiA, ms(mA.Elapsed), mA.Sim.Sims)
		}
		tw.Flush()
	}
	fmt.Fprintln(cfg.Out, "\n(sampling output cannot be refined; the anySCAN runs above can resume to the exact result)")
	return nil
}

// earlyStop drives an anySCAN run until its similarity-evaluation count
// reaches the budget (or the run finishes), then returns the snapshot.
func earlyStop(g *graph.CSR, o core.Options, budget int64) (*cluster.Result, core.Metrics, error) {
	c, err := core.New(g, o)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	for c.Step() {
		if c.Metrics().Sim.Sims >= budget {
			break
		}
	}
	return c.Snapshot(), c.Metrics(), nil
}
