package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/index"
)

// Record is one benchmark measurement in the machine-readable report: one
// (dataset, algorithm, thread count) cell with its wall time and similarity
// work. Batch and anySCAN rows cluster at the report-level (μ, ε);
// "index-build" rows measure the one-off σ pass of the query index, and
// "index-query" rows carry their own per-record Mu/Eps with the latency of
// answering that query from the index (zero σ evaluations).
// "mutate-apply", "index-patch", and "index-rebuild" rows measure the live
// mutable-graph write path; their Batch field is the mutation-batch size the
// row was measured at. "local-query" rows measure seed-centered community
// expansion from the index: each carries its seed vertex, the size of the
// community it returned, and how many vertices the expansion touched — the
// evidence that local answers cost ≪ |V|.
type Record struct {
	Dataset   string  `json:"dataset"`
	Algorithm string  `json:"algorithm"`
	Threads   int     `json:"threads"`
	Mu        int     `json:"mu,omitempty"`    // index-query / local-query rows
	Eps       float64 `json:"eps,omitempty"`   // index-query / local-query rows
	Batch     int     `json:"batch,omitempty"` // live-mutation rows only
	// Seed, Community, and Touched are set on "local-query" rows only: the
	// seed vertex the expansion started from, the membership size it
	// returned, and the distinct vertices whose neighbor order it scanned.
	Seed      int32   `json:"seed,omitempty"`
	Community int     `json:"community,omitempty"`
	Touched   int     `json:"touched,omitempty"`
	WallMS    float64 `json:"wall_ms"`
	SimEvals  int64   `json:"sim_evals"`
	Clusters  int     `json:"clusters"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	// Bytes and Ratio are set on "compress-encode" rows only: the encoded
	// size of the compressed backend and its fraction of the flat CSR size.
	Bytes int64   `json:"bytes,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
	// Delta is set on "approx-build" and "approx-query" rows: the accuracy
	// dial δ the approximate index was built at.
	Delta float64 `json:"delta,omitempty"`
	// ARI and NMI are set on "approx-query" rows: agreement of the
	// approximate clustering with the exact index's answer at the same (μ, ε).
	ARI float64 `json:"ari,omitempty"`
	NMI float64 `json:"nmi,omitempty"`
	// Sketched is set on "approx-build" rows: edges whose σ came from MinHash
	// sketches rather than an exact evaluation (0 = whole build fell back).
	Sketched int64 `json:"sketched,omitempty"`
}

// Report is the top-level payload of BENCH_<date>.json.
type Report struct {
	Date       string  `json:"date"`
	Scale      float64 `json:"scale"`
	Mu         int     `json:"mu"`
	Eps        float64 `json:"eps"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	// Format is the graph storage backend the index rows were measured on
	// ("" = flat CSR).
	Format  string   `json:"format,omitempty"`
	Records []Record `json:"records"`
}

// CollectRecords measures every batch baseline (single-threaded; they have
// no parallel mode) and anySCAN at each configured thread count, on each
// named dataset.
func CollectRecords(cfg Config, names []string) (Report, error) {
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		Scale:      cfg.Scale,
		Mu:         cfg.Mu,
		Eps:        cfg.Eps,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Format:     cfg.Format,
	}
	for _, name := range names {
		g, err := cfg.load(name)
		if err != nil {
			return rep, err
		}
		recs, err := cfg.measureGraph(name, g)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", name, err)
		}
		rep.Records = append(rep.Records, recs...)
	}
	return rep, nil
}

func (cfg Config) measureGraph(name string, g *graph.CSR) ([]Record, error) {
	var out []Record
	base := Record{Dataset: name, Vertices: g.NumVertices(), Edges: g.NumEdges()}
	for _, a := range batchAlgos() {
		rec := base
		rec.Algorithm = a.name
		rec.Threads = 1
		start := time.Now()
		res, m := a.run(g, cfg.Mu, cfg.Eps)
		rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
		rec.SimEvals = m.Sim.Sims
		rec.Clusters = res.NumClusters
		out = append(out, rec)
	}
	for _, threads := range sortedCopy(cfg.Threads) {
		rec := base
		rec.Algorithm = "anySCAN"
		rec.Threads = threads
		res, m, wall, err := runAnySCAN(g, cfg.anyOpts(g, threads))
		if err != nil {
			return nil, err
		}
		rec.WallMS = float64(wall.Microseconds()) / 1000
		rec.SimEvals = m.Sim.Sims
		rec.Clusters = res.NumClusters
		out = append(out, rec)
	}
	// The encode row doubles as the backend for the index rows when the
	// report is collected with Format == "compressed": the same σ pass and
	// queries then run against the varint-compressed graph, making raw and
	// compressed reports directly comparable row-by-row.
	encStart := time.Now()
	cg := graph.Compress(g)
	enc := base
	enc.Algorithm = "compress-encode"
	enc.Threads = 1
	enc.WallMS = float64(time.Since(encStart).Microseconds()) / 1000
	enc.Bytes = cg.Bytes()
	enc.Ratio = float64(cg.Bytes()) / float64(g.Bytes())
	out = append(out, enc)

	var ig graph.Graph = g
	if cfg.Format == FormatCompressed {
		ig = cg
	}
	recs, x, err := cfg.measureIndex(base, ig)
	if err != nil {
		return nil, err
	}
	out = append(out, recs...)
	approx, err := cfg.measureApproxDial(base, ig, x)
	if err != nil {
		return nil, err
	}
	out = append(out, approx...)
	locals, err := cfg.measureLocal(base, x)
	if err != nil {
		return nil, err
	}
	out = append(out, locals...)
	live, err := cfg.measureLive(base, g, x)
	if err != nil {
		return nil, err
	}
	return append(out, live...), nil
}

// measureIndex records the one-off query-index build (the single σ pass)
// followed by per-query latencies over a small (μ, ε) grid — the interactive
// workload of the GS*-style index, where every query after the build costs
// zero similarity evaluations.
func (cfg Config) measureIndex(base Record, g graph.Graph) ([]Record, *index.Index, error) {
	threads := 1
	for _, t := range cfg.Threads {
		if t > threads {
			threads = t
		}
	}
	x := index.Build(g, threads)

	build := base
	build.Algorithm = "index-build"
	build.Threads = threads
	build.WallMS = float64(x.BuildTime().Microseconds()) / 1000
	build.SimEvals = x.SimEvals()
	out := []Record{build}

	for _, mu := range dedupInts([]int{2, cfg.Mu}) {
		for _, eps := range dedupFloats([]float64{0.3, cfg.Eps, 0.7}) {
			rec := base
			rec.Algorithm = "index-query"
			rec.Threads = threads
			rec.Mu, rec.Eps = mu, eps
			start := time.Now()
			res, err := x.Query(mu, eps)
			if err != nil {
				return nil, nil, err
			}
			rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
			rec.Clusters = res.NumClusters
			out = append(out, rec)
		}
	}
	return out, x, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || !slices.Contains(out, x) {
			out = append(out, x)
		}
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || !slices.Contains(out, x) {
			out = append(out, x)
		}
	}
	return out
}

// WriteJSON writes the report to path ("BENCH_<date>.json" by convention)
// with stable indentation.
func (rep Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// DefaultJSONPath returns the conventional report file name for the date.
func (rep Report) DefaultJSONPath() string {
	return "BENCH_" + rep.Date + ".json"
}
