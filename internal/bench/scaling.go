package bench

import (
	"fmt"
	"time"

	"anyscan/internal/core"
	"anyscan/internal/datasets"
	"anyscan/internal/graph"
	"anyscan/internal/scan"
)

// finalRuntime runs anySCAN with the given thread count and returns the wall
// time (median of runs repetitions).
func (cfg Config) finalRuntime(g *graph.CSR, threads, mu int, eps float64, alpha, beta int) (time.Duration, error) {
	o := cfg.anyOpts(g, threads)
	o.Mu, o.Eps = mu, eps
	if alpha > 0 {
		o.Alpha, o.Beta = alpha, beta
	}
	_, _, d, err := runAnySCAN(g, o)
	return d, err
}

// RunFig10 reproduces Figure 10: cumulative per-iteration runtimes of
// anySCAN under different thread counts (left) and the final speedup over
// the single-thread run (right), for GR01L..GR04L.
//
// On a single-core container the wall-clock speedups plateau at ~1×; the
// parallel structure (blocks, barriers, atomic counts) is still exercised.
func RunFig10(cfg Config) error {
	header(cfg.Out, "Fig 10: anytime cumulative runtimes and final speedups per thread count")
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "threads\tfinal(ms)\tspeedup\timbalance\tper-iteration cumulative (ms)")
		var base time.Duration
		for _, t := range sortedCopy(cfg.Threads) {
			o := cfg.anyOpts(g, t)
			points, m, err := traceAnytimeNoNMI(g, o, 4)
			if err != nil {
				return err
			}
			if t == 1 || base == 0 {
				base = m.Elapsed
			}
			speedup := float64(base) / float64(m.Elapsed)
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t", t, ms(m.Elapsed), speedup, m.LoadImbalance())
			for _, p := range points {
				fmt.Fprintf(tw, "%s ", ms(p.Elapsed))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	return nil
}

// traceAnytimeNoNMI drives a run sampling only cumulative times.
func traceAnytimeNoNMI(g *graph.CSR, o core.Options, sampleEvery int) ([]tracePoint, core.Metrics, error) {
	c, err := core.New(g, o)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	var points []tracePoint
	iter := 0
	for {
		more := c.Step()
		iter++
		if iter%sampleEvery == 0 || !more {
			points = append(points, tracePoint{Iter: iter, Phase: c.Phase(), Elapsed: c.Metrics().Elapsed})
		}
		if !more {
			break
		}
	}
	return points, c.Metrics(), nil
}

// RunFig11 reproduces Figure 11: anySCAN's speedup per thread count next to
// the "ideal" parallel algorithm (all-edge similarity evaluation with no
// synchronization), the upper bound for any parallel SCAN.
func RunFig11(cfg Config) error {
	header(cfg.Out, "Fig 11: anySCAN vs ideal parallel algorithm speedups")
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", name)
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "threads\tanySCAN(ms)\tanySCAN speedup\tideal(ms)\tideal speedup\tnaive-parallel-SCAN(ms)")
		var baseAny, baseIdeal time.Duration
		for _, t := range sortedCopy(cfg.Threads) {
			dAny, err := cfg.finalRuntime(g, t, cfg.Mu, cfg.Eps, 0, 0)
			if err != nil {
				return err
			}
			mIdeal := scan.Ideal(g, cfg.Eps, t)
			_, mNaive := scan.ParallelSCAN(g, cfg.Mu, cfg.Eps, t)
			if baseAny == 0 {
				baseAny, baseIdeal = dAny, mIdeal.Elapsed
			}
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%s\t%.2f\t%s\n", t,
				ms(dAny), float64(baseAny)/float64(dAny),
				ms(mIdeal.Elapsed), float64(baseIdeal)/float64(mIdeal.Elapsed),
				ms(mNaive.Elapsed))
		}
		tw.Flush()
	}
	return nil
}

// RunFig12 reproduces Figure 12: the number of Union operations performed by
// anySCAN (split into the sequential Step-1 part and the critical-section
// Step-2/3 part) compared with pSCAN and with |V|.
func RunFig12(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("Fig 12: Union operation counts (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "dataset\t|V|\tpSCAN unions\tanySCAN unions\t… Step-1 (seq)\t… Step-2/3 (critical)\tsuper-nodes")
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		_, mP := scan.PSCAN(g, cfg.Mu, cfg.Eps)
		_, mAny, _, err := runAnySCAN(g, cfg.anyOpts(g, 0))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			name, g.NumVertices(), mP.Unions,
			mAny.Unions(), mAny.UnionsSeq, mAny.UnionsStep23, mAny.SuperNodes)
	}
	return tw.Flush()
}

// RunFig13 reproduces Figure 13: the scalability of anySCAN (speedup at the
// highest configured thread count over one thread) as μ, ε and the block
// sizes vary, on GR01L.
func RunFig13(cfg Config) error {
	threads := sortedCopy(cfg.Threads)
	hi := threads[len(threads)-1]
	header(cfg.Out, fmt.Sprintf("Fig 13: scalability (speedup of %d threads over 1) on GR01L", hi))
	g, err := cfg.load("GR01L")
	if err != nil {
		return err
	}

	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "sweep\tsetting\t1-thread(ms)\tN-thread(ms)\tspeedup")
	for _, mu := range []int{2, 5, 10, 15} {
		d1, err := cfg.finalRuntime(g, 1, mu, cfg.Eps, 0, 0)
		if err != nil {
			return err
		}
		dn, err := cfg.finalRuntime(g, hi, mu, cfg.Eps, 0, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "μ\t%d\t%s\t%s\t%.2f\n", mu, ms(d1), ms(dn), float64(d1)/float64(dn))
	}
	for _, e := range []float64{0.2, 0.5, 0.8} {
		d1, err := cfg.finalRuntime(g, 1, cfg.Mu, e, 0, 0)
		if err != nil {
			return err
		}
		dn, err := cfg.finalRuntime(g, hi, cfg.Mu, e, 0, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "ε\t%.1f\t%s\t%s\t%.2f\n", e, ms(d1), ms(dn), float64(d1)/float64(dn))
	}
	for _, b := range []int{64, 256, 1024, 4096, 16384} {
		d1, err := cfg.finalRuntime(g, 1, cfg.Mu, cfg.Eps, b, b)
		if err != nil {
			return err
		}
		dn, err := cfg.finalRuntime(g, hi, cfg.Mu, cfg.Eps, b, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "α=β\t%d\t%s\t%s\t%.2f\n", b, ms(d1), ms(dn), float64(d1)/float64(dn))
	}
	return tw.Flush()
}

// RunFig14 reproduces Figure 14: anySCAN's scalability on the LFR degree and
// clustering-coefficient sweeps.
func RunFig14(cfg Config) error {
	threads := sortedCopy(cfg.Threads)
	hi := threads[len(threads)-1]
	header(cfg.Out, fmt.Sprintf("Fig 14: scalability (speedup of %d threads over 1) on synthetic graphs", hi))
	for _, sweep := range []struct {
		title string
		names []string
	}{
		{"average-degree sweep", datasets.LFRDegreeNames()},
		{"clustering-coefficient sweep", datasets.LFRCCNames()},
	} {
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", sweep.title)
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "dataset\t1-thread(ms)\tN-thread(ms)\tspeedup")
		for _, name := range sweep.names {
			g, err := cfg.load(name)
			if err != nil {
				return err
			}
			d1, err := cfg.finalRuntime(g, 1, cfg.Mu, cfg.Eps, 0, 0)
			if err != nil {
				return err
			}
			dn, err := cfg.finalRuntime(g, hi, cfg.Mu, cfg.Eps, 0, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\n", name, ms(d1), ms(dn), float64(d1)/float64(dn))
		}
		tw.Flush()
	}
	return nil
}

// approxCC estimates the average clustering coefficient for report rows.
func approxCC(g *graph.CSR) float64 {
	return graph.ApproxAvgCC(g, 2000, 99)
}
