package bench

import (
	"math/rand"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/live"
)

// This file measures the live mutable-graph write path against the obvious
// alternative it must beat: incrementally patching the (μ, ε) index on a
// mutation batch ("index-patch") versus rebuilding the index from scratch on
// the mutated graph ("index-rebuild"), at batch sizes from a single edge up
// to 1% of |E| — the regime the incremental design targets. "mutate-apply"
// rows record single-mutation batch throughput (the interactive edit shape).

// liveBatch builds one reproducible batch of always-valid mutations: upsert
// adds and idempotent deletes on random distinct endpoints (3:1 add:delete,
// so the graph grows slowly instead of draining).
func liveBatch(rng *rand.Rand, n int32, size int) []live.Mutation {
	muts := make([]live.Mutation, 0, size)
	for len(muts) < size {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if rng.Intn(4) == 0 {
			muts = append(muts, live.Mutation{Op: live.OpDelete, U: u, V: v})
		} else {
			muts = append(muts, live.Mutation{Op: live.OpAdd, U: u, V: v, W: 0.5 + rng.Float32()})
		}
	}
	return muts
}

// measureLive records the mutation benchmarks for one graph, reusing the
// already-built query index as epoch 0 (zero-copy promotion).
func (cfg Config) measureLive(base Record, g *graph.CSR, x *index.Index) ([]Record, error) {
	threads := 1
	for _, t := range cfg.Threads {
		if t > threads {
			threads = t
		}
	}
	var out []Record

	// Single-mutation batches: the interactive edit shape. One live graph
	// absorbs them all; WallMS is the total, SimEvals the σ work.
	const singles = 64
	{
		lg := live.FromIndex(x)
		rng := rand.New(rand.NewSource(1))
		rec := base
		rec.Algorithm = "mutate-apply"
		rec.Threads = threads
		rec.Batch = 1
		start := time.Now()
		for i := 0; i < singles; i++ {
			_, st, err := lg.Apply(liveBatch(rng, int32(g.NumVertices()), 1))
			if err != nil {
				return nil, err
			}
			rec.SimEvals += st.SigmaRecomputed
		}
		rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
		out = append(out, rec)
	}

	// Patch vs rebuild at growing batch sizes: 1 edge, 0.1% and 1% of |E|.
	// Both sides are best-of-trials on identical inputs — a single cold run
	// is dominated by allocator and cache warm-up noise at these sizes.
	const trials = 3
	sizes := dedupInts([]int{1, int(g.NumEdges() / 1000), int(g.NumEdges() / 100)})
	for _, size := range sizes {
		if size < 1 {
			continue
		}
		rng := rand.New(rand.NewSource(int64(size)))
		batch := liveBatch(rng, int32(g.NumVertices()), size)

		patch := base
		patch.Algorithm = "index-patch"
		patch.Threads = threads
		patch.Batch = size
		var ep *live.Epoch
		for i := 0; i < trials; i++ {
			lg := live.FromIndex(x)
			e, st, err := lg.Apply(batch)
			if err != nil {
				return nil, err
			}
			ms := float64(st.Publish.Microseconds()) / 1000
			if i == 0 || ms < patch.WallMS {
				patch.WallMS = ms
			}
			patch.SimEvals = st.SigmaRecomputed
			patch.Edges = e.NumEdges()
			ep = e
		}
		out = append(out, patch)

		// The alternative: a full σ pass over the equivalent mutated graph.
		// (CSR assembly is excluded — the rebuild only has to lose on the σ
		// work itself for the patch to be worth having.)
		mutated, err := ep.ToCSR()
		if err != nil {
			return nil, err
		}
		rebuild := patch
		rebuild.Algorithm = "index-rebuild"
		for i := 0; i < trials; i++ {
			x2 := index.Build(mutated, threads)
			ms := float64(x2.BuildTime().Microseconds()) / 1000
			if i == 0 || ms < rebuild.WallMS {
				rebuild.WallMS = ms
			}
			rebuild.SimEvals = x2.SimEvals()
		}
		out = append(out, rebuild)
	}
	return out, nil
}
