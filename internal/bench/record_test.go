package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCollectRecords(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	rep, err := CollectRecords(cfg, []string{"GR01L"})
	if err != nil {
		t.Fatal(err)
	}
	// 4 batch baselines + one anySCAN row per thread count + 1 compress-encode
	// + 1 index build + a 2×3 (μ, ε) query grid + 1 mutate-apply row + an
	// index-patch and index-rebuild pair per live batch size — plus one
	// local-query row per deterministic seed (largest/median/smallest
	// cluster cores, first border, first noise vertex; duplicates collapse,
	// so the count is graph-dependent but bounded by 5).
	g, err := cfg.load("GR01L")
	if err != nil {
		t.Fatal(err)
	}
	sizes := 0
	for _, s := range dedupInts([]int{1, int(g.NumEdges() / 1000), int(g.NumEdges() / 100)}) {
		if s >= 1 {
			sizes++
		}
	}
	locals := 0
	for _, r := range rep.Records {
		if r.Algorithm == "local-query" {
			locals++
		}
	}
	if locals < 1 || locals > 5 {
		t.Fatalf("got %d local-query rows, want 1-5", locals)
	}
	want := 4 + len(cfg.Threads) + 1 + 1 + 6 + locals + 1 + 2*sizes
	if len(rep.Records) != want {
		t.Fatalf("got %d records, want %d", len(rep.Records), want)
	}
	algos := map[string]int{}
	for _, r := range rep.Records {
		algos[r.Algorithm]++
		if r.Dataset != "GR01L" {
			t.Errorf("record dataset = %q", r.Dataset)
		}
		if r.WallMS < 0 {
			t.Errorf("%s: negative wall time", r.Algorithm)
		}
		if r.Algorithm == "compress-encode" {
			// The encode row measures size, not σ work.
			if r.Bytes <= 0 || r.Ratio <= 0 || r.Ratio > 1.5 {
				t.Errorf("compress-encode: bad size cell %+v", r)
			}
		} else if r.Algorithm == "index-query" {
			// Queries are answered from the prebuilt index: no σ work, and
			// the probed parameters ride along in the record.
			if r.SimEvals != 0 {
				t.Errorf("index-query (μ=%d ε=%g): %d σ evaluations, want 0", r.Mu, r.Eps, r.SimEvals)
			}
			if r.Mu < 1 || r.Eps <= 0 {
				t.Errorf("index-query record missing parameters: %+v", r)
			}
		} else if r.Algorithm == "local-query" {
			// Seed-centered expansion from the prebuilt index: no σ work, and
			// the seed plus the touched count ride along as the evidence of
			// output-proportional cost.
			if r.SimEvals != 0 {
				t.Errorf("local-query (seed=%d): %d σ evaluations, want 0", r.Seed, r.SimEvals)
			}
			if r.Seed < 0 || r.Touched < 1 || r.Touched > r.Vertices {
				t.Errorf("local-query record implausible: %+v", r)
			}
			if r.Mu < 1 || r.Eps <= 0 {
				t.Errorf("local-query record missing parameters: %+v", r)
			}
		} else if r.SimEvals <= 0 {
			t.Errorf("%s (threads=%d): no similarity evaluations recorded", r.Algorithm, r.Threads)
		}
		if r.Vertices <= 0 || r.Edges <= 0 {
			t.Errorf("%s: missing graph shape", r.Algorithm)
		}
	}
	if algos["anySCAN"] != len(cfg.Threads) {
		t.Errorf("anySCAN rows = %d, want %d", algos["anySCAN"], len(cfg.Threads))
	}
	if algos["index-build"] != 1 || algos["index-query"] != 6 {
		t.Errorf("index rows = %d build + %d query, want 1 + 6", algos["index-build"], algos["index-query"])
	}

	// Every batch/anySCAN run is the exact clustering at the report (μ, ε),
	// so cluster counts must agree across algorithms and thread counts — and
	// the index answer at the same parameters must match too.
	clusters := rep.Records[0].Clusters
	for _, r := range rep.Records {
		switch {
		case r.Algorithm == "index-build" || r.Algorithm == "compress-encode" || r.Algorithm == "local-query":
		case r.Algorithm == "mutate-apply" || r.Algorithm == "index-patch" || r.Algorithm == "index-rebuild":
			// Write-path rows measure mutations, not a clustering; they carry
			// the batch size instead.
			if r.Batch < 1 {
				t.Errorf("%s: missing batch size: %+v", r.Algorithm, r)
			}
		case r.Algorithm == "index-query":
			if r.Mu == cfg.Mu && r.Eps == cfg.Eps && r.Clusters != clusters {
				t.Errorf("index-query at the report (μ, ε): %d clusters, batch found %d", r.Clusters, clusters)
			}
		case r.Clusters != clusters:
			t.Errorf("%s (threads=%d): %d clusters, others found %d",
				r.Algorithm, r.Threads, r.Clusters, clusters)
		}
	}
}

func TestReportWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Threads = []int{1}
	rep, err := CollectRecords(cfg, []string{"GR01L"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DefaultJSONPath() != "BENCH_"+rep.Date+".json" {
		t.Fatalf("default path = %q", rep.DefaultJSONPath())
	}
	path := filepath.Join(t.TempDir(), rep.DefaultJSONPath())
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Records) != len(rep.Records) || back.Scale != cfg.Scale || back.Mu != cfg.Mu {
		t.Fatalf("round-tripped report differs: %+v", back)
	}
}
