package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCollectRecords(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	rep, err := CollectRecords(cfg, []string{"GR01L"})
	if err != nil {
		t.Fatal(err)
	}
	// 4 batch baselines + one anySCAN row per thread count.
	want := 4 + len(cfg.Threads)
	if len(rep.Records) != want {
		t.Fatalf("got %d records, want %d", len(rep.Records), want)
	}
	algos := map[string]int{}
	for _, r := range rep.Records {
		algos[r.Algorithm]++
		if r.Dataset != "GR01L" {
			t.Errorf("record dataset = %q", r.Dataset)
		}
		if r.WallMS < 0 {
			t.Errorf("%s: negative wall time", r.Algorithm)
		}
		if r.SimEvals <= 0 {
			t.Errorf("%s (threads=%d): no similarity evaluations recorded", r.Algorithm, r.Threads)
		}
		if r.Vertices <= 0 || r.Edges <= 0 {
			t.Errorf("%s: missing graph shape", r.Algorithm)
		}
	}
	if algos["anySCAN"] != len(cfg.Threads) {
		t.Errorf("anySCAN rows = %d, want %d", algos["anySCAN"], len(cfg.Threads))
	}

	// Every run is the exact clustering, so cluster counts must agree
	// across algorithms and thread counts.
	clusters := rep.Records[0].Clusters
	for _, r := range rep.Records {
		if r.Clusters != clusters {
			t.Errorf("%s (threads=%d): %d clusters, others found %d",
				r.Algorithm, r.Threads, r.Clusters, clusters)
		}
	}
}

func TestReportWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Threads = []int{1}
	rep, err := CollectRecords(cfg, []string{"GR01L"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DefaultJSONPath() != "BENCH_"+rep.Date+".json" {
		t.Fatalf("default path = %q", rep.DefaultJSONPath())
	}
	path := filepath.Join(t.TempDir(), rep.DefaultJSONPath())
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Records) != len(rep.Records) || back.Scale != cfg.Scale || back.Mu != cfg.Mu {
		t.Fatalf("round-tripped report differs: %+v", back)
	}
}
