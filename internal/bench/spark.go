package bench

import "strings"

// sparkRunes render a value series as a compact terminal sparkline, used to
// make the anytime quality curves (Fig 5/8) legible in text reports.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled into [lo, hi].
func sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if hi <= lo {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range values {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		idx := int(f * float64(len(sparkRunes)-1))
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}
