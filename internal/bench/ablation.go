package bench

import (
	"fmt"

	"anyscan/internal/core"
)

// RunAblation quantifies the contribution of each anySCAN design choice
// called out in DESIGN.md: the nei-count core promotion, the Step-2/3
// cluster-agreement pruning, the worklist sorting, the Section III-D
// similarity optimizations, and the (extension) shared per-edge σ memo.
// Every variant computes the identical exact clustering; only the work
// changes.
func RunAblation(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("Ablation: anySCAN design choices (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	variants := []struct {
		name   string
		mutate func(o *core.Options)
	}{
		{"full algorithm", func(o *core.Options) {}},
		{"no nei promotion", func(o *core.Options) { o.Ablation.NoNeiPromotion = true }},
		{"no step-2/3 pruning", func(o *core.Options) { o.Ablation.NoPruning = true }},
		{"no worklist sorting", func(o *core.Options) { o.Ablation.NoSorting = true }},
		{"no Lemma-5 prune", func(o *core.Options) { o.Sim.Lemma5 = false }},
		{"no early exits", func(o *core.Options) { o.Sim.EarlyExit = false }},
		{"no sim optimizations", func(o *core.Options) { o.Sim.Lemma5, o.Sim.EarlyExit = false, false }},
		{"+ edge memo (extension)", func(o *core.Options) { o.EdgeMemo = true }},
	}
	for _, name := range []string{"GR01L", "GR02L", "GR03L", "GR04L"} {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s (|V|=%d, |E|=%d) --\n", name, g.NumVertices(), g.NumEdges())
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "variant\truntime(ms)\tsims\tpruned\tmemo-hits\tunions")
		for _, v := range variants {
			o := cfg.anyOpts(g, 0)
			v.mutate(&o)
			_, m, d, err := runAnySCAN(g, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n",
				v.name, ms(d), m.Sim.Sims, m.Sim.Pruned, m.Sim.Shared, m.Unions())
		}
		tw.Flush()
	}
	return nil
}
