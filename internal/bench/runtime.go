package bench

import (
	"fmt"

	"anyscan/internal/datasets"
	"anyscan/internal/scan"
)

// scanMetrics aliases the batch metrics type for the helpers in this package.
type scanMetrics = scan.Metrics

// RunFig6 reproduces Figure 6: final cumulative runtimes of every algorithm
// across ε (top) and μ (bottom) sweeps on all five real-graph stand-ins.
func RunFig6(cfg Config) error {
	header(cfg.Out, "Fig 6: final runtimes (ms) vs parameters")
	epsSweep := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	muSweep := []int{2, 5, 10, 15}

	for _, name := range datasets.RealNames() {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n-- %s: ε sweep (μ=%d) --\n", name, cfg.Mu)
		tw := newTab(cfg.Out)
		fmt.Fprint(tw, "algorithm")
		for _, e := range epsSweep {
			fmt.Fprintf(tw, "\tε=%.2f", e)
		}
		fmt.Fprintln(tw)
		for _, a := range batchAlgos() {
			fmt.Fprint(tw, a.name)
			for _, e := range epsSweep {
				_, m := a.run(g, cfg.Mu, e)
				fmt.Fprintf(tw, "\t%s", ms(m.Elapsed))
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "anySCAN")
		for _, e := range epsSweep {
			o := cfg.anyOpts(g, 0)
			o.Eps = e
			_, _, d, err := runAnySCAN(g, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", ms(d))
		}
		fmt.Fprintln(tw)
		tw.Flush()

		fmt.Fprintf(cfg.Out, "\n-- %s: μ sweep (ε=%.1f) --\n", name, cfg.Eps)
		tw = newTab(cfg.Out)
		fmt.Fprint(tw, "algorithm")
		for _, mu := range muSweep {
			fmt.Fprintf(tw, "\tμ=%d", mu)
		}
		fmt.Fprintln(tw)
		for _, a := range batchAlgos() {
			fmt.Fprint(tw, a.name)
			for _, mu := range muSweep {
				_, m := a.run(g, mu, cfg.Eps)
				fmt.Fprintf(tw, "\t%s", ms(m.Elapsed))
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "anySCAN")
		for _, mu := range muSweep {
			o := cfg.anyOpts(g, 0)
			o.Mu = mu
			_, _, d, err := runAnySCAN(g, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", ms(d))
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}
	return nil
}

// RunFig7 reproduces Figure 7: (left) the number of structural similarity
// evaluations per algorithm, with SCAN++'s split into true evaluations and
// similarity-sharing lookups; (right) the number of core, border and noise
// (hub/outlier) vertices per dataset.
func RunFig7(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("Fig 7: similarity evaluations and vertex roles (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "dataset\tSCAN\tSCAN-B (+pruned)\tSCAN++ true\tSCAN++ shared\tpSCAN (+pruned)\tanySCAN (+pruned)")
	for _, name := range datasets.RealNames() {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		_, mScan := scan.SCAN(g, cfg.Mu, cfg.Eps)
		_, mScanB := scan.SCANB(g, cfg.Mu, cfg.Eps)
		_, mSpp := scan.SCANPP(g, cfg.Mu, cfg.Eps)
		_, mPscan := scan.PSCAN(g, cfg.Mu, cfg.Eps)
		_, mAny, _, err := runAnySCAN(g, cfg.anyOpts(g, 0))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d (+%d)\t%d\t%d\t%d (+%d)\t%d (+%d)\n",
			name,
			mScan.Sim.Sims,
			mScanB.Sim.Sims, mScanB.Sim.Pruned,
			mSpp.Sim.Sims, mSpp.Sim.Shared,
			mPscan.Sim.Sims, mPscan.Sim.Pruned,
			mAny.Sim.Sims, mAny.Sim.Pruned)
	}
	tw.Flush()

	fmt.Fprintln(cfg.Out, "\n-- vertex roles (from the exact clustering) --")
	tw = newTab(cfg.Out)
	fmt.Fprintln(tw, "dataset\tcores\tborders\thubs\toutliers\tclusters")
	for _, name := range datasets.RealNames() {
		g, err := cfg.load(name)
		if err != nil {
			return err
		}
		res, _ := scan.SCAN(g, cfg.Mu, cfg.Eps)
		c := res.RoleCounts()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n", name, c.Cores, c.Borders, c.Hubs, c.Outliers, res.NumClusters)
	}
	return tw.Flush()
}

// RunFig9 reproduces Figure 9: final runtimes of pSCAN and anySCAN on the
// LFR degree sweep (left) and clustering-coefficient sweep (right).
func RunFig9(cfg Config) error {
	header(cfg.Out, fmt.Sprintf("Fig 9: pSCAN vs anySCAN on synthetic graphs (μ=%d, ε=%.1f)", cfg.Mu, cfg.Eps))
	for _, sweep := range []struct {
		title string
		names []string
	}{
		{"average-degree sweep", datasets.LFRDegreeNames()},
		{"clustering-coefficient sweep", datasets.LFRCCNames()},
	} {
		fmt.Fprintf(cfg.Out, "\n-- %s --\n", sweep.title)
		tw := newTab(cfg.Out)
		fmt.Fprintln(tw, "dataset\td̄\tc\tpSCAN(ms)\tanySCAN(ms)\tratio")
		for _, name := range sweep.names {
			g, err := cfg.load(name)
			if err != nil {
				return err
			}
			d := float64(g.NumArcs()) / float64(g.NumVertices())
			cc := approxCC(g)
			_, mP := scan.PSCAN(g, cfg.Mu, cfg.Eps)
			_, _, dAny, err := runAnySCAN(g, cfg.anyOpts(g, 0))
			if err != nil {
				return err
			}
			ratio := float64(mP.Elapsed) / float64(dAny)
			fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%s\t%s\t%.2f\n", name, d, cc, ms(mP.Elapsed), ms(dAny), ratio)
		}
		tw.Flush()
	}
	return nil
}
