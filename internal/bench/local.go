package bench

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/index"
	"anyscan/internal/local"
)

// measureLocal records per-seed local community queries at (cfg.Mu,
// cfg.Eps). The seeds are derived deterministically from the global
// clustering — cores of the largest, median, and smallest clusters, the
// first border, and the first noise vertex — so the same dataset at the
// same parameters always produces the same baseline cells, which is what
// lets CI compare them against a committed reference.
//
// The Touched column of these rows is the point of the experiment: for
// seeds outside the giant component it must stay a small fraction of |V|
// (the local query visits only the community and its fringe), while the
// matching index-query row pays the full O(|V|) result allocation.
func (cfg Config) measureLocal(base Record, x *index.Index) ([]Record, error) {
	res, err := x.Query(cfg.Mu, cfg.Eps)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, seed := range localSeeds(res) {
		rec := base
		rec.Algorithm = "local-query"
		rec.Threads = 1
		rec.Mu, rec.Eps = cfg.Mu, cfg.Eps
		rec.Seed = seed
		start := time.Now()
		lr, err := local.Query(x, seed, cfg.Mu, cfg.Eps)
		if err != nil {
			return nil, err
		}
		rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
		rec.Community = len(lr.Members)
		rec.Touched = lr.Touched
		out = append(out, rec)
	}
	return out, nil
}

// localSeeds picks the deterministic seed set from a global clustering:
// the smallest core vertex of the largest, median, and smallest clusters
// (the interesting spread of community sizes), plus the first border and
// the first noise vertex when they exist. Duplicates collapse.
func localSeeds(res *cluster.Result) []int32 {
	var seeds []int32
	add := func(v int32) {
		for _, s := range seeds {
			if s == v {
				return
			}
		}
		seeds = append(seeds, v)
	}
	sizes := res.ClusterSizes()
	if len(sizes) > 0 {
		largest, smallest := int32(0), int32(0)
		for l := range sizes {
			if sizes[l] > sizes[largest] {
				largest = int32(l)
			}
			if sizes[l] < sizes[smallest] {
				smallest = int32(l)
			}
		}
		// Median by size rank: sort labels by (size, label) and take the middle.
		order := make([]int32, len(sizes))
		for i := range order {
			order[i] = int32(i)
		}
		for i := 1; i < len(order); i++ { // insertion sort: label count is small
			for j := i; j > 0; j-- {
				a, b := order[j-1], order[j]
				if sizes[a] < sizes[b] || (sizes[a] == sizes[b] && a < b) {
					break
				}
				order[j-1], order[j] = b, a
			}
		}
		median := order[len(order)/2]
		for _, label := range []int32{largest, median, smallest} {
			if v, ok := firstCoreOf(res, label); ok {
				add(v)
			}
		}
	}
	for v := 0; v < res.N(); v++ {
		if res.Roles[v] == cluster.Border {
			add(int32(v))
			break
		}
	}
	for v := 0; v < res.N(); v++ {
		if res.Roles[v].IsNoise() {
			add(int32(v))
			break
		}
	}
	return seeds
}

// firstCoreOf returns the smallest core vertex of the cluster.
func firstCoreOf(res *cluster.Result, label int32) (int32, bool) {
	for v := 0; v < res.N(); v++ {
		if res.Labels[v] == label && res.Roles[v] == cluster.Core {
			return int32(v), true
		}
	}
	return 0, false
}
