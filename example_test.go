package anyscan_test

import (
	"fmt"

	"anyscan"
)

// A small two-community graph used by the examples: two triangles joined by
// a single bridge vertex.
func exampleGraph() *anyscan.Graph {
	g, err := anyscan.FromUnweightedEdges(7, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, // community A
		{4, 5}, {4, 6}, {5, 6}, // community B
		{2, 3}, {3, 4}, // bridge vertex 3
	})
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleCluster() {
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 3, 0.6
	res, _, err := anyscan.Cluster(exampleGraph(), opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("vertex 0:", res.Roles[0])
	fmt.Println("vertex 3:", res.Roles[3])
	// Output:
	// clusters: 2
	// vertex 0: core
	// vertex 3: hub
}

func ExampleNew_anytime() {
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 3, 0.6
	opts.Alpha, opts.Beta = 2, 2 // tiny blocks so the loop visibly iterates
	opts.Threads = 1
	c, err := anyscan.New(exampleGraph(), opts)
	if err != nil {
		panic(err)
	}
	steps := 0
	for c.Step() {
		steps++
		_ = c.Snapshot() // the best-so-far clustering, inspectable any time
	}
	fmt.Println("finished:", c.Done())
	fmt.Println("ran multiple anytime steps:", steps > 1)
	// Output:
	// finished: true
	// ran multiple anytime steps: true
}

func ExampleNewExplorer() {
	ex, err := anyscan.NewExplorer(exampleGraph(), 3, 1)
	if err != nil {
		panic(err)
	}
	for _, p := range ex.SweepProfile([]float64{0.5, 0.7, 0.9}) {
		fmt.Printf("eps=%.1f clusters=%d cores=%d\n", p.Eps, p.Clusters, p.Counts.Cores)
	}
	// Output:
	// eps=0.5 clusters=1 cores=7
	// eps=0.7 clusters=2 cores=6
	// eps=0.9 clusters=0 cores=0
}

func ExampleNewMaintainerFromGraph() {
	m, err := anyscan.NewMaintainerFromGraph(exampleGraph(), 3, 0.6)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters before:", m.Result().NumClusters)
	// Community A falls apart edge by edge...
	m.RemoveEdge(0, 1)
	m.RemoveEdge(0, 2)
	m.RemoveEdge(1, 2)
	fmt.Println("clusters after:", m.Result().NumClusters)
	// ...and reforms when the friendships return.
	m.AddEdge(0, 1, 1)
	m.AddEdge(0, 2, 1)
	m.AddEdge(1, 2, 1)
	fmt.Println("clusters restored:", m.Result().NumClusters)
	// Output:
	// clusters before: 2
	// clusters after: 1
	// clusters restored: 2
}

func ExampleBatch() {
	res, metrics, err := anyscan.Batch(exampleGraph(), anyscan.AlgoSCAN, anyscan.Query{Mu: 3, Eps: 0.6})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("evaluations:", metrics.Sim.Sims) // 2|E| = 16
	// Output:
	// clusters: 2
	// evaluations: 16
}

func ExampleIndex_Query() {
	// Build the query index once (one σ evaluation per edge), then answer
	// any (μ, ε) without further similarity work.
	x := anyscan.NewIndex(exampleGraph(), 1)
	for _, q := range []anyscan.Query{{Mu: 3, Eps: 0.6}, {Mu: 2, Eps: 0.4}} {
		res, err := x.Query(q.Mu, q.Eps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("mu=%d eps=%.1f clusters=%d\n", q.Mu, q.Eps, res.NumClusters)
	}
	fmt.Println("total evaluations:", x.SimEvals()) // |E| = 8
	// Output:
	// mu=3 eps=0.6 clusters=2
	// mu=2 eps=0.4 clusters=1
	// total evaluations: 8
}

func ExampleNMI() {
	g := exampleGraph()
	a, _, _ := anyscan.Batch(g, anyscan.AlgoSCAN, anyscan.Query{Mu: 3, Eps: 0.6})
	b, _, _ := anyscan.Batch(g, anyscan.AlgoPSCAN, anyscan.Query{Mu: 3, Eps: 0.6})
	fmt.Printf("%.2f\n", anyscan.NMI(a, b))
	// Output:
	// 1.00
}
