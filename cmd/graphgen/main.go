// Command graphgen generates synthetic graphs — the dataset stand-ins and
// the raw generator families — and writes them as edge lists or the compact
// binary container.
//
// Usage:
//
//	graphgen -type lfr -n 20000 -avgdeg 50 -o lfr.txt
//	graphgen -type dataset -name GR01L -scale 0.5 -o gr01.bin
//	graphgen -type hk -n 10000 -m 8 -pt 0.7 -o hk.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anyscan"
	"anyscan/internal/datasets"
)

func main() {
	typ := flag.String("type", "", "generator: lfr | er | ba | hk | rmat | circles | planted | dataset")
	n := flag.Int("n", 10000, "vertices")
	m := flag.Int64("m", 0, "edges (er, rmat) or edges-per-vertex (ba, hk)")
	avgdeg := flag.Float64("avgdeg", 30, "average degree (lfr)")
	mixing := flag.Float64("mixing", 0.2, "community mixing μ_mix (lfr)")
	pt := flag.Float64("pt", 0.5, "triad formation probability (hk)")
	k := flag.Int("k", 8, "communities (planted)")
	pin := flag.Float64("pin", 0.3, "intra-community edge probability (planted)")
	pout := flag.Float64("pout", 0.01, "inter-community edge probability (planted)")
	name := flag.String("name", "", "dataset name (dataset)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (dataset)")
	seed := flag.Int64("seed", 1, "random seed")
	weighted := flag.Bool("weighted", false, "uniform edge weights in [0.5, 1.5] instead of 1")
	out := flag.String("o", "", "output path (.csrz → compressed container, .bin → binary container, else edge list); empty = stats only")
	format := flag.String("format", "", "force the output container: csr (flat .bin semantics) or compressed (.csrz), overriding the extension")
	flag.Parse()

	wc := anyscan.WeightConfig{}
	if *weighted {
		wc = anyscan.WeightConfig{Mode: anyscan.WeightUniform, Min: 0.5, Max: 1.5}
	}

	var g *anyscan.Graph
	var err error
	switch *typ {
	case "lfr":
		cfg := anyscan.DefaultLFR(*n, *avgdeg, *seed)
		cfg.Mixing = *mixing
		cfg.Weights = wc
		g, _, err = anyscan.GenerateLFR(cfg)
	case "er":
		if *m == 0 {
			*m = int64(*n) * 10
		}
		g = anyscan.GenerateErdosRenyi(*n, *m, wc, *seed)
	case "ba":
		if *m == 0 {
			*m = 5
		}
		g = anyscan.GenerateHolmeKim(*n, int(*m), 0, wc, *seed)
	case "hk":
		if *m == 0 {
			*m = 5
		}
		g = anyscan.GenerateHolmeKim(*n, int(*m), *pt, wc, *seed)
	case "rmat":
		sc := 0
		for 1<<sc < *n {
			sc++
		}
		if *m == 0 {
			*m = int64(*n) * 16
		}
		g = anyscan.GenerateRMAT(sc, *m, 0.57, 0.19, 0.19, wc, *seed)
	case "circles":
		g = anyscan.GenerateSocialCircles(anyscan.SocialCirclesConfig{
			N: *n, CirclesPerV: 3.5, CircleSize: 40, CircleSizeJit: 20, IntraP: 0.7,
			Weights: wc, Seed: *seed,
		})
	case "planted":
		g = anyscan.GeneratePlantedPartition(*n, *k, *pin, *pout, wc, *seed)
	case "dataset":
		g, err = datasets.Load(*name, *scale)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown -type %q\n", *typ)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	s := anyscan.ComputeStats(g)
	fmt.Printf("generated: %d vertices, %d edges, d̄=%.2f, c=%.4f, max-deg=%d\n",
		s.Vertices, s.Edges, s.AvgDegree, s.AvgCC, s.MaxDegree)

	if *out == "" {
		return
	}
	compressed := strings.HasSuffix(*out, ".csrz")
	switch *format {
	case "":
	case "csr":
		compressed = false
	case "compressed":
		compressed = true
	default:
		fatal(fmt.Errorf("unknown -format %q (have csr, compressed)", *format))
	}
	if compressed {
		c := anyscan.CompressGraph(g)
		if err := c.WriteCompressedFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (compressed, %.1f%% of flat CSR)\n", *out,
			100*float64(c.Bytes())/float64(g.Bytes()))
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(*out, ".bin"):
		err = g.WriteBinary(f)
	case strings.HasSuffix(*out, ".metis"), strings.HasSuffix(*out, ".graph"):
		err = g.WriteMETIS(f)
	default:
		err = g.WriteEdgeList(f)
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
