// Command anyscan clusters a graph with the anytime parallel anySCAN
// algorithm (or one of the exact batch baselines).
//
// Batch mode clusters a graph file and writes "vertex label role" lines:
//
//	anyscan -input graph.txt -mu 5 -eps 0.5 -o clusters.txt
//	anyscan -input graph.metis -algorithm pscan
//
// Interactive mode demonstrates the paper's suspend/inspect/resume scheme:
// the run pauses after every progress report and accepts commands on stdin
// ("c" continue, "s" snapshot summary, "q" stop with the best-so-far
// result):
//
//	anyscan -input graph.txt -interactive
//
// Sweep mode explores several ε values from a single similarity pass:
//
//	anyscan -input graph.txt -sweep 0.2,0.3,0.4,0.5,0.6
//
// Without -input, a synthetic dataset stand-in can be clustered directly:
//
//	anyscan -dataset GR01L -eps 0.6
//
// Long runs survive interruption: SIGINT/SIGTERM stops the run at a
// consistent point (even inside a block), writes an atomic checkpoint when
// -checkpoint is set, and reports the best-so-far clustering;
// -checkpoint-interval additionally checkpoints periodically:
//
//	anyscan -input big.bin -checkpoint run.ckpt -checkpoint-interval 30s
//	anyscan -input big.bin -resume run.ckpt
//
// Input formats by extension: .metis/.graph (METIS), .bin (binary
// container), .csrz (compressed container, see "anyscan graph convert"),
// anything else (whitespace edge list, '#' comments).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anyscan"
	"anyscan/internal/datasets"
)

func main() {
	// "anyscan remote <verb>" talks to a running anyscand service instead of
	// clustering locally (see remote.go); "anyscan index <verb>" builds and
	// queries persisted (μ, ε) query indexes (see index.go).
	if len(os.Args) > 1 && os.Args[1] == "remote" {
		remoteMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "index" {
		indexMain(os.Args[2:])
		return
	}
	// "anyscan graph <verb>" converts and inspects graph storage formats,
	// including the compressed .csrz container (see graph.go).
	if len(os.Args) > 1 && os.Args[1] == "graph" {
		graphMain(os.Args[2:])
		return
	}
	input := flag.String("input", "", "graph file to cluster (.metis/.graph, .bin, or edge list)")
	dataset := flag.String("dataset", "", "synthetic dataset stand-in to cluster instead of -input (e.g. GR01L)")
	scale := flag.Float64("scale", 0.5, "scale factor for -dataset")
	algorithm := flag.String("algorithm", "anyscan", "anyscan | scan | scanb | scanpp | pscan | parallel | overlap")
	mu := flag.Int("mu", 5, "μ: minimum ε-neighborhood size for cores")
	eps := flag.Float64("eps", 0.5, "ε: structural similarity threshold")
	alpha := flag.Int("alpha", 0, "Step-1 block size α (0 = max(128, |V|/128))")
	beta := flag.Int("beta", 0, "Step-2/3 block size β (0 = like alpha)")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	relabel := flag.Bool("relabel", false, "renumber vertices in degree-descending order before clustering (better locality on skewed graphs; output keeps the original ids)")
	interactive := flag.Bool("interactive", false, "pause for commands between progress reports (anyscan only)")
	every := flag.Int("every", 4, "iterations between progress reports")
	sweepList := flag.String("sweep", "", "comma-separated ε values to explore from one similarity pass")
	output := flag.String("o", "", "write 'vertex label role' lines to this file")
	checkpoint := flag.String("checkpoint", "", "write resumable checkpoints here (atomic temp+fsync+rename; used on quit, on SIGINT/SIGTERM, and by -checkpoint-interval)")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "auto-checkpoint to -checkpoint every interval (e.g. 30s; 0 disables)")
	resume := flag.String("resume", "", "resume an anyscan run from this checkpoint file")
	flag.Parse()

	if *checkpointInterval < 0 {
		fatal(fmt.Errorf("-checkpoint-interval must be >= 0, got %v", *checkpointInterval))
	}
	if *checkpointInterval > 0 && *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint-interval requires -checkpoint PATH"))
	}

	// Install the SIGINT/SIGTERM handler before the (potentially long) graph
	// load, so a signal at any point in the process lifetime interrupts
	// gracefully: a run in progress stops at a consistent point (StepCtx
	// notices the cancellation even inside a block), the state is
	// checkpointed when -checkpoint is set, and the best-so-far clustering
	// is reported. A second signal kills the process the default way
	// (runAnySCAN deregisters the handler on the first one).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, ids, err := load(*input, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	if *relabel {
		// Cluster the degree-relabeled copy but keep reporting in the input's
		// ids: external id of new vertex perm[old] is the old vertex's id.
		var perm []int32
		g, perm = anyscan.RelabelByDegree(g)
		remapped := make([]int64, len(perm))
		for old, newV := range perm {
			id := int64(old)
			if ids != nil {
				id = ids[old]
			}
			remapped[newV] = id
		}
		ids = remapped
	}
	s := anyscan.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, d̄=%.2f, c=%.4f\n", s.Vertices, s.Edges, s.AvgDegree, s.AvgCC)

	if *sweepList != "" {
		if err := runSweep(g, *mu, *threads, *sweepList); err != nil {
			fatal(err)
		}
		return
	}

	var res *anyscan.Result
	switch *algorithm {
	case "anyscan":
		res = runAnySCAN(ctx, stop, g, anyCfg{
			mu: *mu, eps: *eps, alpha: *alpha, beta: *beta, threads: *threads,
			interactive: *interactive, every: *every,
			checkpoint: *checkpoint, checkpointEvery: *checkpointInterval,
			resume: *resume,
		})
	case "overlap":
		runOverlap(g, *mu, *eps)
		return
	default:
		algo, err := anyscan.ParseAlgorithm(*algorithm)
		if err != nil {
			fatal(fmt.Errorf("unknown -algorithm %q", *algorithm))
		}
		res = runBatch(algo, g, anyscan.Query{Mu: *mu, Eps: *eps, Threads: *threads})
	}

	if *output != "" {
		if err := writeResult(*output, res, ids); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *output)
	}
}

type anyCfg struct {
	mu                 int
	eps                float64
	alpha, beta        int
	threads            int
	interactive        bool
	every              int
	checkpoint, resume string
	checkpointEvery    time.Duration
}

func runAnySCAN(ctx context.Context, stop context.CancelFunc, g *anyscan.Graph, cfg anyCfg) *anyscan.Result {
	var c *anyscan.Clusterer
	if cfg.resume != "" {
		var err error
		c, err = anyscan.LoadCheckpointFile(g, cfg.resume)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s at phase %s (iteration %d)\n", cfg.resume, c.Phase(), c.Progress().Iterations)
	} else {
		opts := anyscan.DefaultOptions()
		opts.Mu, opts.Eps = cfg.mu, cfg.eps
		alpha, beta := cfg.alpha, cfg.beta
		if alpha <= 0 {
			alpha = g.NumVertices() / 128
			if alpha < 128 {
				alpha = 128
			}
		}
		if beta <= 0 {
			beta = alpha
		}
		opts.Alpha, opts.Beta = alpha, beta
		if cfg.threads > 0 {
			opts.Threads = cfg.threads
		}
		var err error
		c, err = anyscan.New(g, opts)
		if err != nil {
			fatal(err)
		}
	}
	interactive, every := cfg.interactive, cfg.every

	stdin := bufio.NewScanner(os.Stdin)
	start := time.Now()
	lastCkpt := start
	iter := 0
	for {
		more, err := c.StepCtx(ctx)
		if err != nil {
			stop()
			fmt.Println("\ninterrupted; reporting the best-so-far clustering")
			writeCheckpointIfConfigured(c, cfg.checkpoint)
			break
		}
		if !more {
			break
		}
		iter++
		if cfg.checkpointEvery > 0 && time.Since(lastCkpt) >= cfg.checkpointEvery {
			if err := saveCheckpoint(c, cfg.checkpoint); err != nil {
				fatal(err)
			}
			lastCkpt = time.Now()
			fmt.Printf("[%7.2fs] auto-checkpoint written to %s\n", time.Since(start).Seconds(), cfg.checkpoint)
		}
		if iter%every != 0 {
			continue
		}
		p := c.Progress()
		fmt.Printf("[%7.2fs] %s\n", time.Since(start).Seconds(), formatProgress(p))
		if interactive && !prompt(c, stdin) {
			fmt.Println("stopped early; reporting the best-so-far clustering")
			writeCheckpointIfConfigured(c, cfg.checkpoint)
			break
		}
	}
	res := c.Snapshot()
	m := c.Metrics()
	counts := res.RoleCounts()
	fmt.Printf("done in %v (algorithm time %v, %d iterations)\n",
		time.Since(start).Round(time.Millisecond), m.Elapsed.Round(time.Millisecond), m.Iterations)
	fmt.Printf("clusters=%d cores=%d borders=%d hubs=%d outliers=%d unclassified=%d\n",
		res.NumClusters, counts.Cores, counts.Borders, counts.Hubs, counts.Outliers, counts.Unclassified)
	fmt.Printf("work: %d similarity evals (+%d pruned), %d unions, %d super-nodes\n",
		m.Sim.Sims, m.Sim.Pruned, m.Unions(), m.SuperNodes)
	return res
}

// saveCheckpoint writes a checkpoint durably: SaveCheckpointFile stages the
// frame in a temp file, fsyncs and atomically renames it over path, so a
// crash mid-save never destroys the previous checkpoint.
func saveCheckpoint(c *anyscan.Clusterer, path string) error {
	return c.SaveCheckpointFile(path)
}

func writeCheckpointIfConfigured(c *anyscan.Clusterer, path string) {
	if path == "" {
		return
	}
	if err := saveCheckpoint(c, path); err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint written to %s (resume with -resume %s)\n", path, path)
}

func runBatch(algo anyscan.Algorithm, g *anyscan.Graph, q anyscan.Query) *anyscan.Result {
	res, m, err := anyscan.Batch(g, algo, q)
	if err != nil {
		fatal(err)
	}
	counts := res.RoleCounts()
	fmt.Printf("%s done in %v\n", algo, m.Elapsed.Round(time.Millisecond))
	fmt.Printf("clusters=%d cores=%d borders=%d hubs=%d outliers=%d\n",
		res.NumClusters, counts.Cores, counts.Borders, counts.Hubs, counts.Outliers)
	fmt.Printf("work: %d similarity evals (+%d pruned, %d shared)\n",
		m.Sim.Sims, m.Sim.Pruned, m.Sim.Shared)
	return res
}

func runOverlap(g *anyscan.Graph, mu int, eps float64) {
	start := time.Now()
	ov, err := anyscan.OverlappingCommunities(g, anyscan.OverlapOptions{Mu: mu, Eps: eps})
	if err != nil {
		fatal(err)
	}
	hist := map[int]int{}
	maxDeg := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := ov.OverlapDegree(v)
		hist[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("link-space clustering done in %v: %d overlapping communities\n",
		time.Since(start).Round(time.Millisecond), ov.NumCommunities)
	for d := 0; d <= maxDeg; d++ {
		if hist[d] > 0 {
			fmt.Printf("  in %d communities: %d vertices\n", d, hist[d])
		}
	}
}

func runSweep(g *anyscan.Graph, mu, threads int, list string) error {
	var epsValues []float64
	for _, part := range strings.Split(list, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad -sweep entry %q: %w", part, err)
		}
		epsValues = append(epsValues, e)
	}
	start := time.Now()
	ex, err := anyscan.NewExplorer(g, mu, threads)
	if err != nil {
		return err
	}
	fmt.Printf("explorer built in %v (one σ per edge)\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("     ε  clusters    cores  borders     hubs  outliers")
	for _, p := range ex.SweepProfile(epsValues) {
		fmt.Printf("  %.3f  %8d  %7d  %7d  %7d  %8d\n",
			p.Eps, p.Clusters, p.Counts.Cores, p.Counts.Borders, p.Counts.Hubs, p.Counts.Outliers)
	}
	return nil
}

// formatProgress renders one anytime progress report from the read-only
// core.Progress snapshot (shared with the anyscand job-status endpoint).
func formatProgress(p anyscan.Progress) string {
	return fmt.Sprintf("iter=%d phase=%s super-nodes=%d touched=%d/%d σ-evals=%d",
		p.Iterations, p.Phase, p.SuperNodes, p.Touched, p.Vertices, p.Sims)
}

// prompt handles one interactive pause; returns false to stop the run.
func prompt(c *anyscan.Clusterer, stdin *bufio.Scanner) bool {
	for {
		fmt.Print("anyscan> [c]ontinue  [s]napshot  [q]uit: ")
		if !stdin.Scan() {
			return true // EOF: just keep running to completion
		}
		switch stdin.Text() {
		case "", "c":
			return true
		case "s":
			snap := c.Snapshot()
			counts := snap.RoleCounts()
			fmt.Printf("  best-so-far: clusters=%d cores=%d borders=%d noise=%d unclassified=%d\n",
				snap.NumClusters, counts.Cores, counts.Borders, counts.Noise(), counts.Unclassified)
		case "q":
			return false
		default:
			fmt.Println("  commands: c (continue), s (snapshot), q (quit)")
		}
	}
}

func load(input, dataset string, scale float64) (*anyscan.Graph, []int64, error) {
	switch {
	case input != "" && dataset != "":
		return nil, nil, fmt.Errorf("use either -input or -dataset, not both")
	case input != "":
		return anyscan.LoadGraphFile(input)
	case dataset != "":
		g, err := datasets.Load(dataset, scale)
		return g, nil, err
	default:
		return nil, nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", datasets.Names())
	}
}

func writeResult(path string, res *anyscan.Result, ids []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# vertex cluster role")
	for v := 0; v < res.N(); v++ {
		id := int64(v)
		if ids != nil {
			id = ids[v]
		}
		fmt.Fprintf(w, "%d %d %s\n", id, res.Labels[v], res.Roles[v])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anyscan:", err)
	os.Exit(1)
}
