package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"anyscan"
	igraph "anyscan/internal/graph"
)

// graphMain implements "anyscan graph <verb>": storage-backend tooling for
// graph files.
//
//	anyscan graph convert -input graph.txt -o graph.csrz
//	anyscan graph convert -input graph.csrz -o graph.bin
//	anyscan graph info -input graph.csrz
//
// "convert" rewrites a graph between the storage formats this repository
// reads (edge list, METIS, .bin binary container, .csrz compressed
// container), choosing each format from the file extension. A written .csrz
// is reopened and fully validated (CRC plus an exhaustive decode of every
// neighbor list) before convert reports success, so a corrupt or
// misconverted file is never left looking usable.
func graphMain(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: anyscan graph <convert|info> [flags]"))
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "convert":
		graphConvert(rest)
	case "info":
		graphInfo(rest)
	default:
		fatal(fmt.Errorf("unknown graph verb %q (have convert, info)", verb))
	}
}

func graphConvert(args []string) {
	fs := flag.NewFlagSet("graph convert", flag.ExitOnError)
	input := fs.String("input", "", "source graph (.metis/.graph, .bin, .csrz, or edge list)")
	output := fs.String("o", "", "destination; format chosen by extension (.csrz, .bin, .metis/.graph, else edge list)")
	fs.Parse(args)
	if *input == "" || *output == "" {
		fatal(fmt.Errorf("graph convert needs -input FILE and -o FILE"))
	}
	start := time.Now()
	// Load flat: a .csrz input is decompressed here, every other format is
	// parsed; conversion always goes through the canonical CSR.
	g, _, err := anyscan.LoadGraphFile(*input)
	if err != nil {
		fatal(err)
	}
	loadTime := time.Since(start)

	start = time.Now()
	switch ext := strings.ToLower(filepath.Ext(*output)); ext {
	case ".csrz":
		c := anyscan.CompressGraph(g)
		if err := c.WriteCompressedFile(*output); err != nil {
			fatal(err)
		}
		// Reopen what was just written and decode every neighbor list: a
		// convert must never leave a .csrz behind that later fails to serve.
		chk, err := igraph.OpenCompressedFile(*output, igraph.CompressedOpenOptions{
			VerifyCRC: true, ValidateFull: true,
		})
		if err != nil {
			fatal(fmt.Errorf("validating %s: %w", *output, err))
		}
		if got, want := igraph.FingerprintOf(chk), igraph.FingerprintOf(g); got != want {
			fatal(fmt.Errorf("validating %s: content fingerprint mismatch after round-trip", *output))
		}
		chk.Close()
		raw := g.Bytes()
		fmt.Printf("converted in %v (load %v): %d vertices, %d edges, %s -> %s (%.1f%% of flat CSR), validated\n",
			time.Since(start).Round(time.Millisecond), loadTime.Round(time.Millisecond),
			g.NumVertices(), g.NumEdges(), byteCount(raw), byteCount(c.Bytes()),
			100*float64(c.Bytes())/float64(raw))
		return
	case ".bin":
		err = writeGraphAtomic(*output, g.WriteBinary)
	case ".metis", ".graph":
		err = writeGraphAtomic(*output, g.WriteMETIS)
	default:
		err = writeGraphAtomic(*output, g.WriteEdgeList)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("converted in %v (load %v): %d vertices, %d edges -> %s\n",
		time.Since(start).Round(time.Millisecond), loadTime.Round(time.Millisecond),
		g.NumVertices(), g.NumEdges(), *output)
}

func graphInfo(args []string) {
	fs := flag.NewFlagSet("graph info", flag.ExitOnError)
	input := fs.String("input", "", "graph file (.metis/.graph, .bin, .csrz, or edge list)")
	fs.Parse(args)
	if *input == "" {
		fatal(fmt.Errorf("graph info needs -input FILE"))
	}
	g, _, err := anyscan.LoadGraph(*input)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("backend:  %T\n", g)
	fmt.Printf("vertices: %d\n", g.NumVertices())
	fmt.Printf("edges:    %d\n", g.NumEdges())
	if g.NumVertices() > 0 {
		fmt.Printf("avg deg:  %.2f\n", float64(2*g.NumEdges())/float64(g.NumVertices()))
	}
	if s, ok := g.(interface {
		Bytes() int64
		ResidentBytes() int64
	}); ok {
		fmt.Printf("bytes:    %s (%s resident)\n", byteCount(s.Bytes()), byteCount(s.ResidentBytes()))
	}
}

// writeGraphAtomic writes via temp file + rename so an interrupted convert
// never leaves a truncated destination.
func writeGraphAtomic(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".convert-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func byteCount(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGT"[exp])
}
