package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anyscan/internal/server"
)

// remoteMain implements "anyscan remote <verb> [flags]": a thin client for a
// running anyscand service. Every verb prints the server's JSON response.
//
//	anyscan remote load    -addr URL -name g -path graph.metis
//	anyscan remote graphs  -addr URL
//	anyscan remote evict   -addr URL -name g
//	anyscan remote submit  -addr URL -graph g -mu 5 -eps 0.5 [-wait]
//	anyscan remote jobs    -addr URL
//	anyscan remote status  -addr URL -job j1
//	anyscan remote snapshot -addr URL -job j1 [-assignments]
//	anyscan remote result  -addr URL -job j1 [-assignments]
//	anyscan remote pause | resume | cancel -addr URL -job j1
//	anyscan remote query   -addr URL -graph g -mu 5 [-eps 0.5 | -eps-list 0.3,0.5 | -limit 8] [-approx 0.05] [-min-epoch 3]
//	anyscan remote local   -addr URL -graph g -vertex 42 -mu 5 -eps 0.5 [-approx 0.05] [-min-epoch 3] [-no-members]
//	anyscan remote mutate  -addr URL -graph g -ops add:1:2:0.8,del:3:4,rw:1:2:1.5
//	anyscan remote cluster -addr URL -graph g -mu 5 -eps 0.5   (deprecated: use query)
//	anyscan remote sweep   -addr URL -graph g -mu 5 [-eps-list 0.3,0.5]   (deprecated: use query)
func remoteMain(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: anyscan remote <load|graphs|evict|submit|jobs|status|snapshot|result|pause|resume|cancel|query|local|mutate|cluster|sweep> [flags]"))
	}
	verb, args := args[0], args[1:]
	fs := flag.NewFlagSet("remote "+verb, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "anyscand base URL")
	name := fs.String("name", "", "graph registry name")
	path := fs.String("path", "", "graph file path (load)")
	dataset := fs.String("dataset", "", "synthetic dataset name (load)")
	scale := fs.Float64("scale", 0, "dataset scale factor (load)")
	graphName := fs.String("graph", "", "graph name (submit/cluster/sweep)")
	mu := fs.Int("mu", 5, "μ: minimum ε-neighborhood size for cores")
	eps := fs.Float64("eps", 0.5, "ε: structural similarity threshold")
	epsList := fs.String("eps-list", "", "comma-separated ε values (query/sweep profile)")
	limit := fs.Int("limit", 0, "max auto-picked ε thresholds for a query profile (0 = server default)")
	minEpoch := fs.Int64("min-epoch", 0, "query/local: wait for this live epoch before answering (read-your-writes)")
	approx := fs.Float64("approx", 0, "query/local: accuracy dial δ in [0,1) — σ estimated from sketches, near-threshold edges exact (0 = exact)")
	vertex := fs.Int64("vertex", -1, "local: seed vertex id")
	noMembers := fs.Bool("no-members", false, "local: omit the member list (summary only)")
	ops := fs.String("ops", "", "mutate: comma-separated add:u:v:w, del:u:v, rw:u:v:w operations")
	threads := fs.Int("threads", 0, "worker count for the job (0 = server default)")
	seed := fs.Int64("seed", 0, "random seed for the job (0 = server default)")
	jobID := fs.String("job", "", "job id")
	withAssignments := fs.Bool("assignments", false, "include per-vertex labels and roles")
	wait := fs.Bool("wait", false, "submit: poll until the job finishes")
	waitTimeout := fs.Duration("wait-timeout", 10*time.Minute, "timeout for -wait")
	callTimeout := fs.Duration("timeout", time.Minute, "overall deadline per request (retries included)")
	fs.Parse(args)

	// Every call is bounded by -timeout and aborts cleanly on Ctrl-C; the
	// context reaches the server, which cancels any in-flight work it started
	// for us.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *callTimeout)
	defer cancel()

	c := server.NewClient(strings.TrimRight(*addr, "/"))
	needJob := func() string {
		if *jobID == "" {
			fatal(fmt.Errorf("remote %s needs -job ID", verb))
		}
		return *jobID
	}
	needGraph := func() string {
		if *graphName == "" {
			fatal(fmt.Errorf("remote %s needs -graph NAME", verb))
		}
		return *graphName
	}

	var out any
	var err error
	switch verb {
	case "load":
		out, err = c.LoadGraph(ctx, server.LoadGraphRequest{
			Name:        *name,
			GraphSource: server.GraphSource{Path: *path, Dataset: *dataset, Scale: *scale},
		})
	case "graphs":
		out, err = c.ListGraphs(ctx)
	case "evict":
		if *name == "" {
			fatal(fmt.Errorf("remote evict needs -name NAME"))
		}
		err = c.EvictGraph(ctx, *name)
		out = map[string]string{"evicted": *name}
	case "submit":
		spec := server.JobSpec{Graph: needGraph(), Mu: *mu, Eps: *eps, Threads: *threads, Seed: *seed}
		var st server.JobStatus
		st, err = c.SubmitJob(ctx, spec)
		out = st
		if err == nil && *wait {
			waitCtx, cancelWait := context.WithTimeout(ctx, *waitTimeout)
			out, err = c.WaitJob(waitCtx, st.ID)
			cancelWait()
		}
	case "jobs":
		out, err = c.ListJobs(ctx)
	case "status":
		out, err = c.JobStatus(ctx, needJob())
	case "snapshot":
		out, err = c.JobSnapshot(ctx, needJob(), *withAssignments)
	case "result":
		out, err = c.JobResult(ctx, needJob(), *withAssignments)
	case "pause":
		out, err = c.PauseJob(ctx, needJob())
	case "resume":
		out, err = c.ResumeJob(ctx, needJob())
	case "cancel":
		out, err = c.CancelJob(ctx, needJob())
	case "query":
		// -eps-list (or no ε at all) asks for a profile; a single -eps asks
		// for the exact clustering at (μ, ε).
		epsSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "eps" {
				epsSet = true
			}
		})
		switch {
		case *epsList != "":
			out, err = c.QueryProfile(ctx, needGraph(), *mu, parseEpsList(*epsList), *limit)
		case epsSet:
			out, err = c.QueryApproxEpoch(ctx, needGraph(), *mu, *eps, *approx, *minEpoch, *withAssignments)
		default:
			out, err = c.QueryProfile(ctx, needGraph(), *mu, nil, *limit)
		}
	case "local":
		if *vertex < 0 {
			fatal(fmt.Errorf("remote local needs -vertex ID (the seed vertex)"))
		}
		out, err = c.LocalApproxEpoch(ctx, needGraph(), int32(*vertex), *mu, *eps, *approx, *minEpoch, !*noMembers)
	case "mutate":
		if *ops == "" {
			fatal(fmt.Errorf("remote mutate needs -ops LIST (e.g. add:1:2:0.8,del:3:4)"))
		}
		out, err = c.Mutate(ctx, needGraph(), parseOps(*ops))
	case "cluster": // deprecated alias of "query" with a single ε
		out, err = c.Cluster(ctx, needGraph(), *mu, *eps, *withAssignments)
	case "sweep": // deprecated alias of "query" with an ε list
		var epsValues []float64
		if *epsList != "" {
			epsValues = parseEpsList(*epsList)
		}
		out, err = c.Sweep(ctx, needGraph(), *mu, epsValues)
	default:
		fatal(fmt.Errorf("unknown remote verb %q", verb))
	}
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// parseOps turns "-ops add:1:2:0.8,del:3:4,rw:1:2:1.5" into mutation specs.
// Accepted op names: add, del/delete, rw/reweight. add and rw take u:v:w;
// del takes u:v.
func parseOps(raw string) []server.MutationSpec {
	var muts []server.MutationSpec
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		var op string
		switch fields[0] {
		case "add":
			op = "add"
		case "del", "delete":
			op = "delete"
		case "rw", "reweight":
			op = "reweight"
		default:
			fatal(fmt.Errorf("bad -ops entry %q: unknown op %q (want add, del, or rw)", part, fields[0]))
		}
		wantFields := 4
		if op == "delete" {
			wantFields = 3
		}
		if len(fields) != wantFields {
			fatal(fmt.Errorf("bad -ops entry %q: want %s", part, map[string]string{
				"add": "add:u:v:w", "delete": "del:u:v", "reweight": "rw:u:v:w"}[op]))
		}
		u, err1 := strconv.ParseInt(fields[1], 10, 32)
		v, err2 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -ops entry %q: endpoints must be integers", part))
		}
		m := server.MutationSpec{Op: op, U: int32(u), V: int32(v)}
		if op != "delete" {
			w, err := strconv.ParseFloat(fields[3], 32)
			if err != nil {
				fatal(fmt.Errorf("bad -ops entry %q: bad weight %q", part, fields[3]))
			}
			m.W = float32(w)
		}
		muts = append(muts, m)
	}
	if len(muts) == 0 {
		fatal(fmt.Errorf("-ops list is empty"))
	}
	return muts
}

func parseEpsList(raw string) []float64 {
	var epsValues []float64
	for _, part := range strings.Split(raw, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -eps-list value %q", part))
		}
		epsValues = append(epsValues, v)
	}
	return epsValues
}
