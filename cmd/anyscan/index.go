package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anyscan"
)

// indexMain implements "anyscan index <verb>": build a persisted (μ, ε)
// query index for a graph, then answer exact clustering queries from it
// without re-evaluating a single similarity.
//
//	anyscan index build -input graph.txt -o graph.idx
//	anyscan index query -input graph.txt -index graph.idx -mu 5 -eps 0.5
//	anyscan index query -input graph.txt -mu 5 -eps 0.3,0.5,0.7
//	anyscan index local -input graph.txt -index graph.idx -vertex 42 -mu 5 -eps 0.5
//
// "query" without -index builds the index in memory first; with -index it
// loads the persisted one (verifying the graph fingerprint) and spends zero
// σ evaluations. "local" expands just the seed vertex's community in
// output-proportional time, with membership identical to the full query.
func indexMain(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: anyscan index <build|query|local> [flags]"))
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "build":
		indexBuild(rest)
	case "query":
		indexQuery(rest)
	case "local":
		indexLocal(rest)
	default:
		fatal(fmt.Errorf("unknown index verb %q (have build, query, local)", verb))
	}
}

func indexBuild(args []string) {
	fs := flag.NewFlagSet("index build", flag.ExitOnError)
	input := fs.String("input", "", "graph file (.metis/.graph, .bin, or edge list)")
	output := fs.String("o", "", "write the index here (atomic temp+fsync+rename)")
	threads := fs.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	approx := fs.Float64("approx", 0, "accuracy dial δ in [0,1): estimate σ from MinHash sketches, resolving near-threshold edges exactly (0 = exact)")
	fs.Parse(args)
	if *input == "" || *output == "" {
		fatal(fmt.Errorf("index build needs -input FILE and -o FILE"))
	}
	g, _, err := anyscan.LoadGraphFile(*input)
	if err != nil {
		fatal(err)
	}
	x := buildIndex(g, *threads, *approx)
	if err := x.SaveFile(*output); err != nil {
		fatal(err)
	}
	fmt.Printf("written to %s\n", *output)
}

// buildIndex constructs an in-memory index at the requested accuracy dial
// (0 = exact) and prints the one-line build report.
func buildIndex(g anyscan.GraphView, threads int, approx float64) *anyscan.Index {
	if approx <= 0 {
		x := anyscan.NewIndex(g, threads)
		fmt.Printf("index built in %v (%d σ evaluations, one per edge)\n",
			x.BuildTime().Round(time.Millisecond), x.SimEvals())
		return x
	}
	x, err := anyscan.NewIndexApprox(g, threads, approx)
	if err != nil {
		fatal(err)
	}
	a := x.Approx()
	switch {
	case a.ExactFallback:
		fmt.Printf("index built in %v (exact: graph has non-unit weights, no sketchable σ)\n",
			x.BuildTime().Round(time.Millisecond))
	default:
		fmt.Printf("index built in %v (approx δ=%g: %d arcs sketched with k=%d MinHash, %d small-neighborhood arcs exact)\n",
			x.BuildTime().Round(time.Millisecond), a.Delta, a.Sketched, a.K, a.BuildExact)
	}
	return x
}

// indexLocal answers one seed-centered community query from a (built or
// loaded) index: the seed's role plus its community membership, visiting
// only the community and its fringe instead of clustering the whole graph.
func indexLocal(args []string) {
	fs := flag.NewFlagSet("index local", flag.ExitOnError)
	input := fs.String("input", "", "graph file (.metis/.graph, .bin, .csrz, or edge list)")
	indexPath := fs.String("index", "", "persisted index built with 'anyscan index build' (omit to build in memory)")
	vertex := fs.Int64("vertex", -1, "seed vertex id (original file id when the input renumbers)")
	mu := fs.Int("mu", 5, "μ: minimum ε-neighborhood size for cores")
	eps := fs.Float64("eps", 0.5, "ε: structural similarity threshold")
	threads := fs.Int("threads", 0, "worker count for building/loading (0 = GOMAXPROCS)")
	approx := fs.Float64("approx", 0, "accuracy dial δ in [0,1) for the in-memory build (ignored with -index; 0 = exact)")
	output := fs.String("o", "", "write 'vertex role' member lines here")
	fs.Parse(args)
	if *input == "" {
		fatal(fmt.Errorf("index local needs -input FILE"))
	}
	if *vertex < 0 {
		fatal(fmt.Errorf("index local needs -vertex ID (the seed vertex)"))
	}

	g, ids, err := anyscan.LoadGraphFile(*input)
	if err != nil {
		fatal(err)
	}
	// Edge-list inputs renumber vertices; map the user-supplied original id
	// onto the internal one so the seed means what the file said.
	seed := int64(-1)
	if ids == nil {
		seed = *vertex
	} else {
		for v, id := range ids {
			if id == *vertex {
				seed = int64(v)
				break
			}
		}
		if seed < 0 {
			fatal(fmt.Errorf("vertex %d not present in %s", *vertex, *input))
		}
	}

	var x *anyscan.Index
	if *indexPath != "" {
		x, err = anyscan.LoadIndexFile(g, *indexPath, *threads)
		if err != nil {
			fatal(err)
		}
	} else {
		x = buildIndex(g, *threads, *approx)
	}

	start := time.Now()
	res, err := anyscan.Local(g, x, int32(seed), *mu, *eps)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	orig := func(v int32) int64 {
		if ids != nil {
			return ids[v]
		}
		return int64(v)
	}
	fmt.Printf("seed %d at (μ=%d, ε=%.3f): %s, community size %d, touched %d of %d vertices in %v\n",
		*vertex, *mu, *eps, res.Role, len(res.Members), res.Touched, g.NumVertices(),
		elapsed.Round(time.Microsecond))
	if len(res.Members) > 0 && *output == "" {
		fmt.Print("members:")
		for i, m := range res.Members {
			fmt.Printf(" %d(%s)", orig(m), res.Roles[i])
			if i == 49 && len(res.Members) > 50 {
				fmt.Printf(" ... (%d more)", len(res.Members)-50)
				break
			}
		}
		fmt.Println()
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "# vertex role")
		for i, m := range res.Members {
			fmt.Fprintf(f, "%d %s\n", orig(m), res.Roles[i])
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *output)
	}
}

func indexQuery(args []string) {
	fs := flag.NewFlagSet("index query", flag.ExitOnError)
	input := fs.String("input", "", "graph file (.metis/.graph, .bin, or edge list)")
	indexPath := fs.String("index", "", "persisted index built with 'anyscan index build' (omit to build in memory)")
	mu := fs.Int("mu", 5, "μ: minimum ε-neighborhood size for cores")
	epsList := fs.String("eps", "0.5", "ε value, or comma-separated ε values for a profile")
	threads := fs.Int("threads", 0, "worker count for building/loading (0 = GOMAXPROCS)")
	approx := fs.Float64("approx", 0, "accuracy dial δ in [0,1) for the in-memory build (ignored with -index; 0 = exact)")
	output := fs.String("o", "", "write 'vertex label role' lines here (single ε only)")
	fs.Parse(args)
	if *input == "" {
		fatal(fmt.Errorf("index query needs -input FILE"))
	}
	var epsValues []float64
	for _, part := range strings.Split(*epsList, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -eps entry %q: %w", part, err))
		}
		epsValues = append(epsValues, e)
	}

	g, ids, err := anyscan.LoadGraphFile(*input)
	if err != nil {
		fatal(err)
	}
	var x *anyscan.Index
	if *indexPath != "" {
		start := time.Now()
		x, err = anyscan.LoadIndexFile(g, *indexPath, *threads)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index loaded in %v (0 σ evaluations)\n", time.Since(start).Round(time.Millisecond))
		if a := x.Approx(); a.Delta > 0 && !a.ExactFallback {
			fmt.Printf("loaded index is approximate (δ=%g, k=%d MinHash)\n", a.Delta, a.K)
		}
	} else {
		x = buildIndex(g, *threads, *approx)
	}

	var last *anyscan.Result
	fmt.Println("  μ      ε  clusters    cores  borders     hubs  outliers   query")
	for _, eps := range epsValues {
		start := time.Now()
		res, err := x.Query(*mu, eps)
		if err != nil {
			fatal(err)
		}
		c := res.RoleCounts()
		fmt.Printf("%3d  %.3f  %8d  %7d  %7d  %7d  %8d  %6v\n",
			*mu, eps, res.NumClusters, c.Cores, c.Borders, c.Hubs, c.Outliers,
			time.Since(start).Round(time.Microsecond))
		last = res
	}
	if *output != "" {
		if len(epsValues) != 1 {
			fatal(fmt.Errorf("-o needs exactly one -eps value"))
		}
		if err := writeResult(*output, last, ids); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *output)
	}
}
