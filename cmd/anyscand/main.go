// Command anyscand serves anySCAN clustering over HTTP: a registry of loaded
// graphs, asynchronous anytime clustering jobs (submit / poll / snapshot /
// pause / resume / cancel), and interactive (μ, ε) queries on /v1/query,
// answered from a per-graph query index built with a single similarity pass
// per graph. Graphs are mutable while being served: POST
// /v1/graphs/{name}/edges applies a batch of edge mutations, patches the
// index incrementally, and publishes the result as a new epoch whose token
// gives read-your-writes on /v1/query via ?min_epoch=.
//
//	anyscand -addr :8080 -checkpoint-dir /var/lib/anyscand
//
// With -checkpoint-dir, unfinished jobs survive daemon restarts: each has a
// manifest and an atomic checkpoint, recovered into the paused state on
// startup. SIGINT/SIGTERM drains gracefully — running jobs park at a
// consistent point and checkpoint before the listener shuts down.
//
// Graphs can be preloaded at startup:
//
//	anyscand -preload graph.metis -preload name=web:web.bin -preload dataset:GR01L
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anyscan/internal/server"
)

type preloadList []string

func (p *preloadList) String() string     { return strings.Join(*p, ",") }
func (p *preloadList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ckptDir := flag.String("checkpoint-dir", "", "directory for job manifests and checkpoints (empty = jobs do not survive restarts)")
	workers := flag.Int("workers", 2, "concurrent clustering jobs")
	ckptSteps := flag.Int("checkpoint-every", 16, "checkpoint running jobs every N steps (0 = only on pause/drain)")
	indexThreads := flag.Int("index-threads", 0, "workers for query-index construction (0 = GOMAXPROCS)")
	flag.IntVar(indexThreads, "explorer-threads", 0, "deprecated alias of -index-threads")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs to park on shutdown")
	buildSlots := flag.Int("build-slots", 0, "concurrent index builds admitted (0 = default 2)")
	admissionQueue := flag.Int("admission-queue", 0, "bounded admission wait queue depth (0 = default 16, negative = shed immediately at saturation)")
	admissionWait := flag.Duration("admission-wait", 0, "max time a request waits in the admission queue before being shed (0 = default 2s)")
	queryTimeout := flag.Duration("query-timeout", 0, "default deadline on index-building routes (0 = default 60s, negative = none)")
	requestTimeout := flag.Duration("request-timeout", 0, "default deadline on all other routes (0 = default 15s, negative = none)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client rate-limit burst (0 = 2x rate)")
	indexBudgetMB := flag.Int64("index-memory-budget-mb", 0, "resident query-index memory budget in MiB; LRU-evicted above it (0 = unlimited)")
	graphFormat := flag.String("graph-format", "", "storage backend for preloaded graphs: csr (flat, default) or compressed (varint; .csrz files stay mmap-backed)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = disabled)")
	var preloads preloadList
	flag.Var(&preloads, "preload", "graph to load at startup: PATH, name=NAME:PATH, or dataset:NAME (repeatable)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := server.New(server.Config{
		Manager: server.ManagerConfig{
			Workers:              *workers,
			CheckpointDir:        *ckptDir,
			CheckpointEverySteps: *ckptSteps,
			Logger:               log,
		},
		IndexThreads: *indexThreads,
		Overload: server.OverloadConfig{
			BuildSlots:        *buildSlots,
			QueueDepth:        *admissionQueue,
			QueueWait:         *admissionWait,
			QueryTimeout:      *queryTimeout,
			RequestTimeout:    *requestTimeout,
			RatePerSec:        *rateLimit,
			RateBurst:         *rateBurst,
			IndexMemoryBudget: *indexBudgetMB << 20,
		},
		Logger: log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "anyscand:", err)
		os.Exit(1)
	}

	for _, spec := range preloads {
		name, src, err := parsePreload(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anyscand:", err)
			os.Exit(1)
		}
		src.Format = *graphFormat
		e, err := srv.Registry().Load(name, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anyscand:", err)
			os.Exit(1)
		}
		log.Info("graph preloaded", "name", e.Name, "vertices", e.G.NumVertices(), "edges", e.G.NumEdges())
	}

	// The profiler gets its own listener and mux so the main API surface never
	// exposes pprof endpoints: bind it to localhost (or a firewalled port) and
	// it stays reachable to operators only, even when the service port is
	// public. Off unless -pprof-addr is set.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("pprof listener", "err", err)
			}
		}()
		defer pprofSrv.Close()
		log.Info("pprof listening", "addr", *pprofAddr)
	}

	// ReadHeaderTimeout bounds slow-loris header dribbling before a handler is
	// even picked; per-route body/write deadlines are set by the server's
	// deadline middleware.
	httpSrv := &http.Server{Addr: *addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("anyscand listening", "addr", *addr, "checkpoint_dir", *ckptDir, "workers", *workers)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "anyscand:", err)
		os.Exit(1)
	case sig := <-sigCh:
		log.Info("draining on signal", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Error("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Error("shutdown", "err", err)
	}
	log.Info("anyscand stopped")
}

// parsePreload parses one -preload value: "PATH", "name=NAME:PATH", or
// "dataset:NAME[@SCALE]".
func parsePreload(spec string) (string, server.GraphSource, error) {
	name := ""
	if rest, ok := strings.CutPrefix(spec, "name="); ok {
		n, p, ok := strings.Cut(rest, ":")
		if !ok || n == "" || p == "" {
			return "", server.GraphSource{}, fmt.Errorf("bad -preload %q: want name=NAME:PATH", spec)
		}
		name, spec = n, p
	}
	if ds, ok := strings.CutPrefix(spec, "dataset:"); ok {
		scale := 0.0
		if d, s, ok := strings.Cut(ds, "@"); ok {
			if _, err := fmt.Sscanf(s, "%g", &scale); err != nil {
				return "", server.GraphSource{}, fmt.Errorf("bad -preload scale in %q", spec)
			}
			ds = d
		}
		return name, server.GraphSource{Dataset: ds, Scale: scale}, nil
	}
	return name, server.GraphSource{Path: spec}, nil
}
