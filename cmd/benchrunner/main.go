// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Section IV) on the scaled-down synthetic dataset stand-ins.
//
// Usage:
//
//	benchrunner [flags] <experiment>...
//	benchrunner -list
//	benchrunner all
//
// Experiments: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 (see DESIGN.md for the experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"anyscan/internal/bench"
	"anyscan/internal/datasets"
)

func main() {
	cfg := bench.DefaultConfig(os.Stdout)
	scale := flag.Float64("scale", cfg.Scale, "dataset scale factor (1.0 = default reduced scale)")
	threads := flag.String("threads", "1,2,4,8,16", "comma-separated thread counts for scalability experiments")
	mu := flag.Int("mu", cfg.Mu, "μ: minimum ε-neighborhood size for cores")
	eps := flag.Float64("eps", cfg.Eps, "ε: structural similarity threshold")
	alpha := flag.Int("alpha", cfg.Alpha, "anySCAN Step-1 block size α")
	beta := flag.Int("beta", cfg.Beta, "anySCAN Step-2/3 block size β")
	relabel := flag.Bool("relabel", false, "renumber datasets in degree-descending order before measuring")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "also write a machine-readable BENCH_<date>.json (dataset × algorithm × threads: wall time, σ evaluations; plus query-index build time and per-(μ,ε) query latencies)")
	jsonPath := flag.String("json-out", "", "path for the -json report (default BENCH_<date>.json)")
	jsonSets := flag.String("json-datasets", "", "comma-separated datasets for the -json report (default: the Table I stand-ins)")
	format := flag.String("format", "csr", "graph storage backend for the -json index rows: csr | compressed")
	approxDeltas := flag.String("approx-deltas", "0.01", "comma-separated accuracy dials δ for the -json approx rows (empty = skip)")
	approxGate := flag.Float64("approx-gate", 0, "fail the run when any approx-query row's ARI against the exact answer is below this (0 = no gate)")
	goBench := flag.String("gobench", "", "also render the -json report in `go test -bench` format to this path (benchstat-compatible)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json reports: benchrunner -compare old.json new.json")
	failOnMissing := flag.Bool("fail-on-missing", false, "-compare: exit non-zero when a baseline cell has no counterpart in the new report (coverage regressions; timing deltas stay informational)")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchrunner: -compare needs exactly two report paths: old.json new.json")
			os.Exit(2)
		}
		oldRep, err := bench.LoadReport(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		newRep, err := bench.LoadReport(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := bench.WriteComparison(os.Stdout, oldRep, newRep); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if *failOnMissing {
			_, onlyOld, _ := bench.CompareReports(oldRep, newRep)
			if len(onlyOld) > 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: %d baseline cell(s) missing from the new report (coverage regression)\n", len(onlyOld))
				os.Exit(1)
			}
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg.Scale, cfg.Mu, cfg.Eps, cfg.Alpha, cfg.Beta = *scale, *mu, *eps, *alpha, *beta
	cfg.Relabel = *relabel
	switch *format {
	case "", bench.FormatCSR, bench.FormatCompressed:
		cfg.Format = *format
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown -format %q (have csr, compressed)\n", *format)
		os.Exit(2)
	}
	cfg.Threads = cfg.Threads[:0]
	for _, part := range strings.Split(*threads, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "benchrunner: bad -threads entry %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, t)
	}
	for _, part := range strings.Split(*approxDeltas, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.ParseFloat(part, 64)
		if err != nil || d < 0 || d >= 1 {
			fmt.Fprintf(os.Stderr, "benchrunner: bad -approx-deltas entry %q (want δ in [0,1))\n", part)
			os.Exit(2)
		}
		if d > 0 {
			cfg.ApproxDeltas = append(cfg.ApproxDeltas, d)
		}
	}

	names := flag.Args()
	if (*jsonOut || *goBench != "") && len(names) == 0 {
		// -json/-gobench alone: emit the machine-readable report without
		// re-running the text experiments.
		writeJSONReport(cfg, *jsonSets, *jsonPath, *goBench, *jsonOut, *approxGate)
		return
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: name experiments to run, or 'all' (-list to enumerate)")
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = names[:0]
		for _, e := range bench.Experiments() {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		exp, err := bench.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		if err := exp.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *jsonOut || *goBench != "" {
		writeJSONReport(cfg, *jsonSets, *jsonPath, *goBench, *jsonOut, *approxGate)
	}
}

// writeJSONReport measures the -json dataset set and writes the
// machine-readable report (and/or its go-bench rendering) alongside the
// text output, applying the -approx-gate accuracy floor if one is set.
func writeJSONReport(cfg bench.Config, datasetCSV, path, goBenchPath string, writeJSON bool, approxGate float64) {
	names := datasets.RealNames()
	if datasetCSV != "" {
		names = names[:0]
		for _, part := range strings.Split(datasetCSV, ",") {
			names = append(names, strings.TrimSpace(part))
		}
	}
	rep, err := bench.CollectRecords(cfg, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	if approxGate > 0 {
		checked := 0
		failed := 0
		for _, r := range rep.Records {
			if r.Algorithm != "approx-query" {
				continue
			}
			checked++
			if r.ARI < approxGate {
				failed++
				fmt.Fprintf(os.Stderr, "benchrunner: approx-gate: %s δ=%g (μ=%d, ε=%g): ARI %.4f < %.4f\n",
					r.Dataset, r.Delta, r.Mu, r.Eps, r.ARI, approxGate)
			}
		}
		if checked == 0 {
			fmt.Fprintln(os.Stderr, "benchrunner: approx-gate set but the report has no approx-query rows (check -approx-deltas)")
			os.Exit(1)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: approx-gate: %d of %d approx-query cells below ARI %.4f\n", failed, checked, approxGate)
			os.Exit(1)
		}
		fmt.Fprintf(cfg.Out, "approx-gate: %d approx-query cells all at ARI >= %.4f\n", checked, approxGate)
	}
	if writeJSON {
		if path == "" {
			path = rep.DefaultJSONPath()
		}
		if err := rep.WriteJSON(path); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(cfg.Out, "\nwrote %s (%d records)\n", path, len(rep.Records))
	}
	if goBenchPath != "" {
		f, err := os.Create(goBenchPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := rep.WriteGoBench(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(cfg.Out, "wrote %s (go-bench format)\n", goBenchPath)
	}
}
