package anyscan

import "anyscan/internal/linkspace"

// OverlapOptions configures link-space overlapping community detection.
type OverlapOptions = linkspace.Options

// Overlap holds per-vertex overlapping community memberships produced by
// clustering the graph's edges (the link-space transformation of LinkSCAN,
// Lim et al. ICDE 2014).
type Overlap = linkspace.Overlap

// OverlappingCommunities clusters the edges of g in link space and maps the
// link communities back to (possibly overlapping) vertex memberships. A
// vertex bridging two dense groups belongs to both, where vertex-partition
// SCAN could only call it a hub.
func OverlappingCommunities(g *Graph, opt OverlapOptions) (*Overlap, error) {
	return linkspace.Communities(g, opt)
}
