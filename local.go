package anyscan

import (
	"fmt"

	"anyscan/internal/local"
)

// LocalResult is the answer to a seed-centered community query: the seed's
// role under the full clustering at (μ, ε), the exact membership of its
// community (nil when the seed is noise), and the number of vertices the
// expansion touched — the measure of its output-proportional cost.
type LocalResult = local.Result

// LocalView is the indexed-graph surface a local query runs against; the
// Index type satisfies it, as does a live epoch.
type LocalView = local.View

// Local answers a seed-centered community query from a prebuilt index:
// which community does seed belong to at (μ, ε), or is it a hub/outlier?
// Membership is byte-identical to the seed's cluster under the full
// idx.Query(mu, eps), but the work is proportional to the community and its
// fringe rather than the graph — the expansion walks only σ-sorted
// neighbor-order prefixes and O(1) core thresholds from the index.
//
// g must be the graph idx was built over; passing a different graph is an
// error (the index's thresholds describe no other adjacency). idx is safe
// for any number of concurrent Local and Query callers.
// For an approximate index (NewIndexApprox with δ>0), Local automatically
// routes through the index's band-aware LocalView, so the membership matches
// the approximate global query the same way the exact pair matches.
func Local(g GraphView, idx *Index, seed int32, mu int, eps float64) (*LocalResult, error) {
	if g != nil && idx.Graph() != g {
		return nil, fmt.Errorf("anyscan: index was built over a different graph")
	}
	return local.Query(idx.LocalView(eps), seed, mu, eps)
}

// LocalQuery answers a seed-centered community query from any LocalView —
// an Index or a live epoch — without the graph-identity check of Local.
func LocalQuery(v LocalView, seed int32, mu int, eps float64) (*LocalResult, error) {
	return local.Query(v, seed, mu, eps)
}
