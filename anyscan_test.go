package anyscan_test

// Black-box tests of the public facade: everything an adopter of the
// library would touch, exercised through the anyscan package only.

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"anyscan"
)

func karate(t *testing.T) *anyscan.Graph {
	t.Helper()
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
		{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
		{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
		{3, 7}, {3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16},
		{6, 16}, {8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
		{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
		{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
		{31, 33}, {32, 33},
	}
	g, err := anyscan.FromUnweightedEdges(34, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicCluster(t *testing.T) {
	g := karate(t)
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 3, 0.5
	res, m, err := anyscan.Cluster(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters == 0 {
		t.Fatal("no clusters found")
	}
	if m.Sim.Sims == 0 {
		t.Fatal("no metrics recorded")
	}
	if err := anyscan.Validate(g, 3, 0.5, res); err != nil {
		// Roles may be coarser without ResolveRoles; membership must agree
		// with the reference at NMI 1 modulo shared borders.
		ref := anyscan.Reference(g, 3, 0.5)
		if nmi := anyscan.NMI(res, ref); nmi < 0.95 {
			t.Fatalf("result too far from reference: NMI=%v (%v)", nmi, err)
		}
	}
}

func TestPublicAnytimeLoop(t *testing.T) {
	g := anyscan.GenerateHolmeKim(3000, 6, 0.7, anyscan.WeightConfig{}, 1)
	opts := anyscan.DefaultOptions()
	opts.Alpha, opts.Beta = 256, 256
	c, err := anyscan.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for c.Step() {
		steps++
		if steps == 3 {
			snap := c.Snapshot()
			if snap.N() != g.NumVertices() {
				t.Fatal("snapshot wrong size")
			}
			p := c.Progress()
			if p.Iterations != 3 {
				t.Fatalf("progress iterations = %d", p.Iterations)
			}
		}
	}
	if steps < 5 {
		t.Fatalf("expected several anytime steps, got %d", steps)
	}
	if !c.Done() {
		t.Fatal("not done after Step returned false")
	}
}

func TestPublicRunWithContext(t *testing.T) {
	g := karate(t)
	res, err := anyscan.Run(context.Background(), g, anyscan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 34 {
		t.Fatalf("result size %d", res.N())
	}
}

func TestPublicBaselinesAgree(t *testing.T) {
	g := karate(t)
	q := anyscan.Query{Mu: 3, Eps: 0.5}
	scanRes, _, err := anyscan.Batch(g, anyscan.AlgoSCAN, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range anyscan.Algorithms()[1:] {
		res, _, err := anyscan.Batch(g, algo, q)
		if err != nil {
			t.Fatal(err)
		}
		if nmi := anyscan.NMI(scanRes, res); nmi < 0.95 {
			t.Errorf("%s: NMI vs SCAN = %v", algo, nmi)
		}
	}
	// The deprecated per-algorithm wrappers stay exact aliases of Batch.
	legacy, _ := anyscan.SCAN(g, 3, 0.5)
	if !reflect.DeepEqual(scanRes.Labels, legacy.Labels) || !reflect.DeepEqual(scanRes.Roles, legacy.Roles) {
		t.Error("deprecated SCAN wrapper diverged from Batch")
	}
	if _, _, err := anyscan.Batch(g, anyscan.Algorithm("nope"), q); err == nil {
		t.Error("Batch accepted an unknown algorithm")
	}
	if _, _, err := anyscan.Batch(g, anyscan.AlgoSCAN, anyscan.Query{Mu: 0, Eps: 0.5}); err == nil {
		t.Error("Batch accepted mu=0")
	}
}

func TestPublicQueryIndex(t *testing.T) {
	g := karate(t)
	x := anyscan.NewIndex(g, 2)
	for _, q := range []anyscan.Query{{Mu: 2, Eps: 0.4}, {Mu: 3, Eps: 0.5}, {Mu: 5, Eps: 0.6}} {
		got, err := x.Query(q.Mu, q.Eps)
		if err != nil {
			t.Fatal(err)
		}
		want := anyscan.Reference(g, q.Mu, q.Eps)
		if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
			t.Errorf("Index.Query(%d, %v) differs from Reference", q.Mu, q.Eps)
		}
		if err := anyscan.Validate(g, q.Mu, q.Eps, got); err != nil {
			t.Errorf("Index.Query(%d, %v): %v", q.Mu, q.Eps, err)
		}
	}
	ex, err := anyscan.ExplorerFromIndex(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	fromIndex := ex.ClusteringAt(0.5)
	direct, err := x.Query(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromIndex.Labels, direct.Labels) || !reflect.DeepEqual(fromIndex.Roles, direct.Roles) {
		t.Error("ExplorerFromIndex disagrees with Index.Query")
	}
}

func TestPublicEdgeListIO(t *testing.T) {
	g := karate(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "karate.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, _, err := anyscan.LoadEdgeListFile(path, anyscan.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip mismatch")
	}
}

func TestPublicGenerators(t *testing.T) {
	lfr, comm, err := anyscan.GenerateLFR(anyscan.DefaultLFR(1000, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if lfr.NumVertices() != 1000 || len(comm) != 1000 {
		t.Fatal("LFR output malformed")
	}
	for _, g := range []*anyscan.Graph{
		anyscan.GenerateErdosRenyi(200, 600, anyscan.WeightConfig{}, 1),
		anyscan.GenerateHolmeKim(200, 4, 0.5, anyscan.WeightConfig{}, 1),
		anyscan.GenerateRMAT(8, 1000, 0.5, 0.2, 0.2, anyscan.WeightConfig{}, 1),
		anyscan.GeneratePlantedPartition(200, 4, 0.3, 0.01, anyscan.WeightConfig{}, 1),
		anyscan.GenerateSocialCircles(anyscan.SocialCirclesConfig{
			N: 500, CirclesPerV: 2, CircleSize: 20, IntraP: 0.6, Seed: 1,
		}),
	} {
		if g.NumEdges() == 0 {
			t.Error("generator produced empty graph")
		}
	}
	s := anyscan.ComputeStats(lfr)
	if s.Vertices != 1000 {
		t.Errorf("stats: %+v", s)
	}
}

func TestPublicRoleConstants(t *testing.T) {
	if anyscan.RoleCore.String() != "core" || anyscan.RoleHub.String() != "hub" {
		t.Error("role constants miswired")
	}
	if !anyscan.RoleHub.IsNoise() || !anyscan.RoleOutlier.IsNoise() {
		t.Error("noise roles misclassified")
	}
	if anyscan.RoleBorder.IsNoise() || anyscan.RoleCore.IsNoise() {
		t.Error("cluster roles claimed noise")
	}
}

func TestRelabelByDegreePreservesClustering(t *testing.T) {
	g := karate(t)
	h, perm := anyscan.RelabelByDegree(g)
	if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
		t.Fatalf("relabeled graph changed size")
	}
	for _, name := range []string{"scan", "pscan"} {
		algo, err := anyscan.ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		q := anyscan.Query{Mu: 3, Eps: 0.45}
		orig, _, err := anyscan.Batch(g, algo, q)
		if err != nil {
			t.Fatal(err)
		}
		rel, _, err := anyscan.Batch(h, algo, q)
		if err != nil {
			t.Fatal(err)
		}
		// The partitions must correspond under the permutation: roles map
		// pointwise, labels up to a consistent bijection.
		fwd := map[int32]int32{}
		for old := 0; old < g.NumVertices(); old++ {
			mapped := perm[old]
			if orig.Roles[old] != rel.Roles[mapped] {
				t.Fatalf("%s: role of %d changed under relabeling: %v vs %v",
					name, old, orig.Roles[old], rel.Roles[mapped])
			}
			a, b := orig.Labels[old], rel.Labels[mapped]
			if (a < 0) != (b < 0) {
				t.Fatalf("%s: vertex %d labeled %d vs %d", name, old, a, b)
			}
			if a < 0 {
				continue
			}
			if want, ok := fwd[a]; ok && want != b {
				t.Fatalf("%s: label %d maps to both %d and %d", name, a, want, b)
			}
			fwd[a] = b
		}
		if orig.NumClusters != rel.NumClusters {
			t.Fatalf("%s: cluster count %d vs %d", name, orig.NumClusters, rel.NumClusters)
		}
	}
}
