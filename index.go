package anyscan

import (
	"io"

	"anyscan/internal/index"
)

// Index is a GS*-Index-style per-graph query structure: one Θ(|E|)
// similarity pass at construction, then exact SCAN clusterings for *any*
// (μ, ε) pair in time proportional to the similar-neighborhood prefixes the
// answer touches — no σ is ever recomputed, for any number of queries at any
// number of distinct μ values. Safe for concurrent queries; the anyscand
// service keeps one Index per graph.
type Index = index.Index

// NewIndex builds the (μ, ε) query index for g with the given number of
// workers (0 = GOMAXPROCS). This is the only similarity pass the index will
// ever perform; Index.Query afterwards answers any (μ, ε) without σ work.
func NewIndex(g GraphView, threads int) *Index { return index.Build(g, threads) }

// ApproxStats reports how an approximate index split its work between the
// sketch estimator and the exact fallback tiers; see Index.Approx.
type ApproxStats = index.ApproxStats

// DefaultApproxDelta is the default accuracy dial for approximate indexes.
const DefaultApproxDelta = index.DefaultApproxDelta

// NewIndexApprox is NewIndex with an accuracy dial: delta=0 builds the exact
// index (byte-identical to NewIndex, including its persisted form); delta in
// (0,1) estimates σ from per-vertex MinHash neighborhood sketches instead of
// exact set joins. Each estimate carries a Chernoff-style error band chosen
// so it is wrong by more than the band with probability at most delta, and
// any query whose ε lands inside an arc's band resolves that arc *exactly*
// (memoized across queries) — misclassification is confined to
// provably-near-threshold edges. Graphs with non-unit edge weights have no
// sketchable form of σ and fall back to the exact build (Index.Approx
// reports it). Queries on the returned index take the band-aware path
// automatically; no query-side flag is needed.
func NewIndexApprox(g GraphView, threads int, delta float64) (*Index, error) {
	return index.BuildApprox(g, threads, delta)
}

// LoadIndex reconstructs an index over g from a stream written with
// Index.Save, skipping the similarity pass entirely. g must be the same
// graph the index was built on (a content fingerprint is verified); the
// framed container rejects truncated or bit-corrupted files and the decoded
// thresholds are validated against g.
func LoadIndex(g GraphView, r io.Reader, threads int) (*Index, error) {
	return index.Load(g, r, threads)
}

// LoadIndexFile opens path and loads one index with LoadIndex; the
// file-writing counterpart is Index.SaveFile, which publishes atomically
// (temp file + fsync + rename).
func LoadIndexFile(g GraphView, path string, threads int) (*Index, error) {
	return index.LoadFile(g, path, threads)
}
