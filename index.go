package anyscan

import (
	"io"

	"anyscan/internal/index"
)

// Index is a GS*-Index-style per-graph query structure: one Θ(|E|)
// similarity pass at construction, then exact SCAN clusterings for *any*
// (μ, ε) pair in time proportional to the similar-neighborhood prefixes the
// answer touches — no σ is ever recomputed, for any number of queries at any
// number of distinct μ values. Safe for concurrent queries; the anyscand
// service keeps one Index per graph.
type Index = index.Index

// NewIndex builds the (μ, ε) query index for g with the given number of
// workers (0 = GOMAXPROCS). This is the only similarity pass the index will
// ever perform; Index.Query afterwards answers any (μ, ε) without σ work.
func NewIndex(g GraphView, threads int) *Index { return index.Build(g, threads) }

// LoadIndex reconstructs an index over g from a stream written with
// Index.Save, skipping the similarity pass entirely. g must be the same
// graph the index was built on (a content fingerprint is verified); the
// framed container rejects truncated or bit-corrupted files and the decoded
// thresholds are validated against g.
func LoadIndex(g GraphView, r io.Reader, threads int) (*Index, error) {
	return index.Load(g, r, threads)
}

// LoadIndexFile opens path and loads one index with LoadIndex; the
// file-writing counterpart is Index.SaveFile, which publishes atomically
// (temp file + fsync + rename).
func LoadIndexFile(g GraphView, path string, threads int) (*Index, error) {
	return index.LoadFile(g, path, threads)
}
