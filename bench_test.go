package anyscan

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section IV), each delegating to the experiment harness at a reduced
// scale, plus micro-benchmarks for the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// For the full-size reports use cmd/benchrunner, which prints the actual
// rows/series the paper plots.

import (
	"io"
	"testing"

	"anyscan/internal/bench"
	"anyscan/internal/core"
	"anyscan/internal/datasets"
	"anyscan/internal/scan"
	"anyscan/internal/simeval"
)

// benchScale keeps the experiment benchmarks fast enough for go test -bench.
const benchScale = 0.12

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := bench.DefaultConfig(io.Discard)
	cfg.Scale = benchScale
	cfg.Threads = []int{1, 2, 4}
	cfg.Alpha, cfg.Beta = 256, 256
	exp, err := bench.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the dataset cache so generation cost is not measured.
	if err := exp.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2LFR(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig5Anytime(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6Sweeps(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7Counts(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8Blocks(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9Synthetic(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10Threads(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Ideal(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12Unions(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13ParamScal(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14SynthScal(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkAblation(b *testing.B)       { benchExperiment(b, "ablation") }
func BenchmarkApprox(b *testing.B)         { benchExperiment(b, "approx") }
func BenchmarkMapReduce(b *testing.B)      { benchExperiment(b, "mapreduce") }

// --- micro-benchmarks -----------------------------------------------------

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return datasets.MustLoad("GR03L", benchScale)
}

func BenchmarkSimilarityEval(b *testing.B) {
	g := benchGraph(b)
	eng := simeval.New(g, 0.5, simeval.Options{})
	adj, wts := g.Neighbors(0)
	if len(adj) == 0 {
		b.Skip("vertex 0 isolated")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(adj)
		eng.SimilarEdge(0, adj[j], wts[j])
	}
}

func BenchmarkSimilarityEvalOptimized(b *testing.B) {
	g := benchGraph(b)
	eng := simeval.New(g, 0.5, simeval.AllOptimizations)
	adj, wts := g.Neighbors(0)
	if len(adj) == 0 {
		b.Skip("vertex 0 isolated")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(adj)
		eng.SimilarEdge(0, adj[j], wts[j])
	}
}

func benchAlgo(b *testing.B, run func(g *Graph)) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(g)
	}
}

func BenchmarkSCAN(b *testing.B) {
	benchAlgo(b, func(g *Graph) { scan.SCAN(g, 5, 0.5) })
}

func BenchmarkSCANB(b *testing.B) {
	benchAlgo(b, func(g *Graph) { scan.SCANB(g, 5, 0.5) })
}

func BenchmarkSCANPP(b *testing.B) {
	benchAlgo(b, func(g *Graph) { scan.SCANPP(g, 5, 0.5) })
}

func BenchmarkPSCAN(b *testing.B) {
	benchAlgo(b, func(g *Graph) { scan.PSCAN(g, 5, 0.5) })
}

func benchAnySCAN(b *testing.B, threads int) {
	o := core.DefaultOptions()
	o.Threads = threads
	o.Alpha, o.Beta = 256, 256
	benchAlgo(b, func(g *Graph) {
		if _, _, err := core.Cluster(g, o); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkAnySCAN1Thread(b *testing.B)  { benchAnySCAN(b, 1) }
func BenchmarkAnySCAN4Threads(b *testing.B) { benchAnySCAN(b, 4) }

func BenchmarkIdealParallel(b *testing.B) {
	benchAlgo(b, func(g *Graph) { scan.Ideal(g, 0.5, 4) })
}

func BenchmarkSnapshot(b *testing.B) {
	g := benchGraph(b)
	o := core.DefaultOptions()
	o.Alpha, o.Beta = 256, 256
	c, err := core.New(g, o)
	if err != nil {
		b.Fatal(err)
	}
	// Midway through Step 1: the interesting anytime case.
	for i := 0; i < 4; i++ {
		c.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Snapshot()
	}
}
