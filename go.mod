module anyscan

go 1.22
