package anyscan

import "anyscan/internal/dynamic"

// Maintainer keeps the exact SCAN clustering of a mutable weighted graph up
// to date under edge insertions, deletions and weight updates, re-evaluating
// only the O(deg(u)+deg(v)) similarities a mutation can affect (the dynamic
// networks scenario of DENGRAPH in the paper's related work).
type Maintainer = dynamic.Maintainer

// NewMaintainer returns a Maintainer over n isolated vertices.
func NewMaintainer(n, mu int, eps float64) (*Maintainer, error) {
	return dynamic.New(n, mu, eps)
}

// NewMaintainerFromGraph returns a Maintainer preloaded with g's edges.
func NewMaintainerFromGraph(g *Graph, mu int, eps float64) (*Maintainer, error) {
	return dynamic.FromGraph(g, mu, eps)
}
